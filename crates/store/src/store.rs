//! The keyed multi-tenant sketch store.
//!
//! [`SketchStore`] holds one coordinated GT sketch per `u64` key — designed
//! for millions of small sketches behind one ingest path. Every key shares
//! the store's [`SketchConfig`] and master seed, so any key's state is
//! always bitwise-interchangeable (canonical wire bytes) with a standalone
//! [`GtSketch`] fed the same labels; the per-key oracle test holds the
//! store to exactly that.
//!
//! ## Tiers
//!
//! A key lives in exactly one of three tiers:
//!
//! * **Resident (packed)** — the common case. State lives in a per-shard
//!   [`SlotArena`] slot: a packed sketch section (per trial: level+count
//!   word, items word, then the sample entries) followed by a *delta
//!   buffer* of raw labels appended with no hashing at all. Because a
//!   coordinated sketch's state is a pure function of the observed label
//!   multiset (the interleaving-independence property the concurrent tests
//!   prove), deferring the hash work is lossless: when the slot fills — or
//!   a query/eviction/pin needs real state — the packed section is
//!   reloaded into a pooled scratch sketch, the delta is replayed in
//!   arrival order through the batch kernel, and the folded state is
//!   written back. Cold keys therefore pay ~1 word write per item on the
//!   ingest path.
//! * **Pinned (hot)** — keys whose per-epoch traffic crosses
//!   [`StoreOptions::hot_threshold`] are promoted to a pooled full
//!   [`GtSketch`] ingested directly through the batch kernels, plus a tiny
//!   *front cache* (SF-sketch shape): the estimate computed at the last
//!   epoch boundary, served to point queries without touching sketch or
//!   arena. Front answers are at most one epoch stale; the authoritative
//!   paths ([`SketchStore::canonical_bytes`], eviction) always read the
//!   full sketch. Keys that cool down are demoted back to a packed slot at
//!   the next epoch boundary.
//! * **Spilled** — evicted under memory pressure: folded, encoded with the
//!   canonical codec, appended to the shard's [`SpillLog`]. The next touch
//!   restores it bitwise-identically via `decode_sketch_into`.
//!
//! ## Sharding and locking
//!
//! Keys hash (`mix64`) onto a power-of-two shard array sized from
//! [`effective_workers`]. Ingest stages up to [`STORE_STAGE`] items,
//! sorts them by `(shard, key, arrival)` — arrival order is preserved
//! *within* a key, which is what keep-first payload semantics need — and
//! takes each shard lock once per staged batch, mirroring
//! `ShardedSketch::extend_labels`. All store counters are recorded under
//! the owning shard's lock; [`SketchStore::metrics_snapshot`] takes every
//! shard lock in index order for a consistent cut.
//!
//! ## Eviction
//!
//! Each shard enforces `byte_budget / shards` over its *budgeted* resident
//! bytes (live slot bytes + pinned sketch heap). Pressure pops an
//! approximate-LRU queue of `(key, stamp)` touches (stale stamps are
//! lazily skipped; pinned victims are demoted first), spilling until the
//! shard is back under budget or nothing evictable remains.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use crossbeam::utils::CachePadded;
use gt_core::{effective_workers, Estimate, GtSketch, SketchConfig};
use gt_hash::mix64;
use gt_streams::{decode_sketch_into, encode_sketch, DecodeScratch, WirePayload};
use parking_lot::Mutex;

use crate::arena::{SketchHandle, SlotArena};
use crate::metrics::{ShardTally, StoreMetricsSnapshot};
use crate::spill::SpillLog;
use crate::Result;

/// Staging-buffer size for keyed ingest: items are grouped by
/// `(shard, key)` in chunks of this many entries so each shard lock is
/// taken once per chunk. Matches `gt_core::sketch::INGEST_BUF`.
pub const STORE_STAGE: usize = 1024;

/// Payloads a [`SketchStore`] can pack into arena words. `WORDS` is the
/// packed width per sample entry — `0` for `()` (distinct counting), `1`
/// for word-sized payloads like `u64`.
pub trait StorePayload: WirePayload {
    /// Packed words per payload (0 or 1).
    const WORDS: usize;
    /// Pack into one arena word. Never called when `WORDS == 0`.
    fn to_word(self) -> u64;
    /// Unpack from one arena word. Never called when `WORDS == 0`.
    fn from_word(word: u64) -> Self;
}

impl StorePayload for () {
    const WORDS: usize = 0;
    fn to_word(self) -> u64 {
        0
    }
    fn from_word(_word: u64) -> Self {}
}

impl StorePayload for u64 {
    const WORDS: usize = 1;
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(word: u64) -> Self {
        word
    }
}

/// Construction knobs for a [`SketchStore`].
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Shard count; `0` (the default) means [`effective_workers`]. Rounded
    /// up to a power of two.
    pub shards: usize,
    /// Total budgeted resident bytes across all shards (live packed slots
    /// plus pinned sketch heap). Crossing it triggers LRU eviction to the
    /// spill log. Default 64 MiB.
    pub byte_budget: usize,
    /// Items a key must receive within one epoch to be pinned into the hot
    /// tier; `0` disables the hot tier entirely. Default 4096.
    pub hot_threshold: u32,
    /// Ingested items per automatic epoch advance (front-cache refresh
    /// cadence); `0` disables automatic advances — call
    /// [`SketchStore::advance_epoch`] yourself. Default 1 Mi items.
    pub epoch_items: u64,
    /// Directory for the per-shard spill logs. `None` (the default) makes
    /// a unique directory under [`std::env::temp_dir`] that is removed on
    /// drop; a provided directory is created if missing and its log files
    /// are removed on drop, but the directory itself is kept.
    pub spill_dir: Option<PathBuf>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            shards: 0,
            byte_budget: 64 << 20,
            hot_threshold: 4096,
            epoch_items: 1 << 20,
            spill_dir: None,
        }
    }
}

impl StoreOptions {
    /// Set the shard count (see [`StoreOptions::shards`]).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the byte budget (see [`StoreOptions::byte_budget`]).
    #[must_use]
    pub fn with_byte_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = bytes;
        self
    }

    /// Set the hot-key threshold (see [`StoreOptions::hot_threshold`]).
    #[must_use]
    pub fn with_hot_threshold(mut self, items: u32) -> Self {
        self.hot_threshold = items;
        self
    }

    /// Set the automatic epoch cadence (see [`StoreOptions::epoch_items`]).
    #[must_use]
    pub fn with_epoch_items(mut self, items: u64) -> Self {
        self.epoch_items = items;
        self
    }

    /// Set an explicit spill directory (see [`StoreOptions::spill_dir`]).
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }
}

/// One staged ingest entry, tagged with its shard and arrival sequence so
/// the sort groups by `(shard, key)` while preserving arrival order within
/// a key (keep-first payload semantics depend on that order).
struct Staged<V> {
    shard: u32,
    seq: u32,
    key: u64,
    label: u64,
    payload: V,
}

/// Where a key's state currently lives.
#[derive(Clone, Copy, Debug)]
enum KeyState {
    /// Packed in an arena slot: `sketch_words` words of packed sketch
    /// section followed by `delta_items` raw unfolded items.
    Resident {
        handle: SketchHandle,
        sketch_words: u32,
        delta_items: u32,
    },
    /// Pinned in the hot tier at `pinned[idx]`.
    Pinned { idx: u32 },
    /// On disk in the shard's spill log.
    Spilled { offset: u64, len: u32 },
}

/// Per-key index entry.
struct KeyEntry {
    state: KeyState,
    /// Stamp of this key's latest LRU touch (stale queue entries carry an
    /// older stamp and are skipped).
    last_stamp: u64,
    /// Epoch `epoch_items` was last reset in.
    epoch: u64,
    /// Items seen this epoch — the popularity signal for pinning.
    epoch_items: u32,
}

/// Epoch-refreshed point-query answer for a hot key (the SF-sketch style
/// "front" stage). At most one epoch stale.
#[derive(Clone, Copy)]
struct FrontCache {
    estimate: Estimate,
    epoch: u64,
}

/// Hot-tier slot: a pooled full sketch plus its front cache.
struct PinnedSlot<V: StorePayload> {
    key: u64,
    live: bool,
    sketch: GtSketch<V>,
    front: Option<FrontCache>,
}

struct ShardState<V: StorePayload> {
    index: HashMap<u64, KeyEntry>,
    arena: SlotArena,
    pinned: Vec<PinnedSlot<V>>,
    pinned_free: Vec<u32>,
    /// Empty coordinated sketch cloned for new pinned slots.
    prototype: GtSketch<V>,
    /// Pooled sketch every fold/query/evict materializes into.
    scratch: GtSketch<V>,
    /// Reusable `(label, payload)` buffer for delta replay and hot-tier
    /// batch ingest.
    run_buf: Vec<(u64, V)>,
    spill: SpillLog,
    spill_buf: Vec<u8>,
    decode_scratch: DecodeScratch<V>,
    /// Approximate-LRU touch queue of `(key, stamp)`.
    lru: VecDeque<(u64, u64)>,
    stamp: u64,
    /// Budgeted bytes: live slot-class bytes + pinned sketch heap.
    resident_bytes: usize,
    resident_keys: u64,
    pinned_keys: u64,
    spilled_keys: u64,
    seen_epoch: u64,
    budget: usize,
    hot_threshold: u32,
    /// `heap_bytes()` of one pooled sketch (constant per config — the
    /// sample tables are fixed-capacity).
    pinned_heap_bytes: usize,
    tally: ShardTally,
}

impl<V: StorePayload> ShardState<V> {
    /// Packed words per sample entry: the label plus the payload words.
    const ENTRY_WORDS: usize = 1 + V::WORDS;

    /// Words the packed sketch section of `sketch` needs.
    fn packed_words(sketch: &GtSketch<V>) -> usize {
        sketch
            .trials()
            .iter()
            .map(|t| 2 + t.sample_len() * Self::ENTRY_WORDS)
            .sum()
    }

    /// Delta headroom a written-back slot must keep: at least 8 items, and
    /// at least a quarter of the sketch section (so slot classes roughly
    /// double alongside the state they hold).
    fn headroom(needed: usize) -> usize {
        (needed / 4).max(8 * Self::ENTRY_WORDS)
    }

    /// Materialize a packed slot into `sketch`: reload the sketch section
    /// (or clear, when the key has only ever buffered deltas), then replay
    /// the delta items in arrival order through the merging batch kernel.
    /// Pure function of the slot contents — callers decide whether to
    /// write the folded state back.
    fn parse_into(
        sketch: &mut GtSketch<V>,
        slot: &[u64],
        sketch_words: usize,
        delta_items: usize,
        replay: &mut Vec<(u64, V)>,
    ) {
        let ew = Self::ENTRY_WORDS;
        if sketch_words == 0 {
            sketch.clear();
        } else {
            let trials = sketch.trials().len();
            let mut pos = 0usize;
            for t in 0..trials {
                let meta = slot[pos];
                let level = (meta >> 56) as u8;
                let n = (meta & ((1u64 << 56) - 1)) as usize;
                let items = slot[pos + 1];
                let base = pos + 2;
                let entries = (0..n).map(|i| {
                    let at = base + i * ew;
                    let payload = if V::WORDS == 1 {
                        V::from_word(slot[at + 1])
                    } else {
                        V::default()
                    };
                    (slot[at], payload)
                });
                sketch
                    .reload_trial(t, level, items, entries)
                    .expect("packed slot state is self-consistent");
                pos = base + n * ew;
            }
            debug_assert_eq!(pos, sketch_words);
        }
        replay.clear();
        let mut at = sketch_words;
        for _ in 0..delta_items {
            let payload = if V::WORDS == 1 {
                V::from_word(slot[at + 1])
            } else {
                V::default()
            };
            replay.push((slot[at], payload));
            at += ew;
        }
        if !replay.is_empty() {
            sketch.insert_batch_merging_with(replay);
        }
    }

    /// Write `sketch`'s packed section into `slot`, returning the words
    /// written (== [`ShardState::packed_words`]).
    fn write_sketch_section(sketch: &GtSketch<V>, slot: &mut [u64]) -> usize {
        let ew = Self::ENTRY_WORDS;
        let mut pos = 0usize;
        for t in sketch.trials() {
            let n = t.sample_len();
            slot[pos] = ((t.level() as u64) << 56) | n as u64;
            slot[pos + 1] = t.items_observed();
            let mut at = pos + 2;
            for (label, payload) in t.sample_iter() {
                slot[at] = label;
                if V::WORDS == 1 {
                    slot[at + 1] = payload.to_word();
                }
                at += ew;
            }
            pos = at;
        }
        pos
    }

    /// Record a touch for the LRU queue, compacting stale entries when the
    /// queue outgrows the live key set.
    fn touch_lru(&mut self, key: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(entry) = self.index.get_mut(&key) {
            entry.last_stamp = stamp;
        }
        self.note_touch(key, stamp);
    }

    /// LRU bookkeeping for a touch whose stamp is already recorded on the
    /// key's entry (the ingest path sets it while it holds the entry
    /// borrow, saving a second index lookup).
    fn note_touch(&mut self, key: u64, stamp: u64) {
        self.lru.push_back((key, stamp));
        if self.lru.len() > (2 * self.index.len()).max(1024) {
            let index = &self.index;
            self.lru
                .retain(|&(k, s)| index.get(&k).is_some_and(|e| e.last_stamp == s));
        }
    }

    /// Bring the shard up to the store's current epoch: refresh the front
    /// cache of every still-hot pinned key and demote the ones that cooled
    /// off. Lazy — runs once per shard per epoch, on the first lock
    /// acquisition that observes the new epoch.
    fn sync_epoch(&mut self, global: u64) {
        if self.seen_epoch == global {
            return;
        }
        let ended = self.seen_epoch;
        self.seen_epoch = global;
        let mut cooled = Vec::new();
        for idx in 0..self.pinned.len() {
            if !self.pinned[idx].live {
                continue;
            }
            let key = self.pinned[idx].key;
            let (epoch, epoch_items) = {
                let e = &self.index[&key];
                (e.epoch, e.epoch_items)
            };
            // Hysteresis: stay pinned on half the promotion threshold, so
            // a key oscillating around the threshold does not ping-pong.
            let still_hot =
                epoch == ended && u64::from(epoch_items) * 2 >= u64::from(self.hot_threshold);
            if still_hot {
                let estimate = self.pinned[idx].sketch.estimate_distinct();
                self.pinned[idx].front = Some(FrontCache {
                    estimate,
                    epoch: global,
                });
                self.tally.front_refreshes += 1;
            } else {
                cooled.push(idx);
            }
        }
        for idx in cooled {
            self.demote(idx);
        }
    }

    /// Write the scratch sketch back as `key`'s resident state, promoting
    /// (or shrinking) the slot class as needed. `old` is the key's current
    /// slot, if any; `None` means the key has no slot (fresh restore).
    fn writeback_scratch(&mut self, key: u64, old: Option<SketchHandle>) {
        let needed = Self::packed_words(&self.scratch);
        let class = self.arena.class_for(needed + Self::headroom(needed));
        let handle = match old {
            Some(h) if h.class == class => h,
            Some(h) => {
                self.resident_bytes -= self.arena.class_bytes(h.class);
                self.arena.free(h);
                if class > h.class {
                    self.tally.promotions += 1;
                }
                let fresh = self.arena.alloc(class);
                self.resident_bytes += self.arena.class_bytes(class);
                fresh
            }
            None => {
                let fresh = self.arena.alloc(class);
                self.resident_bytes += self.arena.class_bytes(class);
                fresh
            }
        };
        let written = Self::write_sketch_section(&self.scratch, self.arena.slot_mut(handle));
        debug_assert_eq!(written, needed);
        self.index
            .get_mut(&key)
            .expect("writeback of unknown key")
            .state = KeyState::Resident {
            handle,
            sketch_words: needed as u32,
            delta_items: 0,
        };
    }

    /// Fold a resident key into the scratch sketch. Writes the folded
    /// state back when a delta was replayed (the fold should be paid once,
    /// not per query) or when `force_writeback` asks for a fresh slot
    /// sizing (the append path uses this to promote a full slot).
    fn fold_resident(&mut self, key: u64, force_writeback: bool) {
        let KeyState::Resident {
            handle,
            sketch_words,
            delta_items,
        } = self.index[&key].state
        else {
            unreachable!("fold_resident on a non-resident key");
        };
        Self::parse_into(
            &mut self.scratch,
            self.arena.slot(handle),
            sketch_words as usize,
            delta_items as usize,
            &mut self.run_buf,
        );
        if delta_items > 0 {
            self.tally.folds += 1;
            self.tally.delta_replayed += u64::from(delta_items);
        }
        if force_writeback || delta_items > 0 {
            self.writeback_scratch(key, Some(handle));
        }
    }

    /// Promote a resident key into the hot tier.
    fn pin(&mut self, key: u64) {
        let KeyState::Resident {
            handle,
            sketch_words,
            delta_items,
        } = self.index[&key].state
        else {
            return;
        };
        let idx = match self.pinned_free.pop() {
            Some(i) => i as usize,
            None => {
                self.pinned.push(PinnedSlot {
                    key: 0,
                    live: false,
                    sketch: self.prototype.clone(),
                    front: None,
                });
                self.pinned.len() - 1
            }
        };
        Self::parse_into(
            &mut self.pinned[idx].sketch,
            self.arena.slot(handle),
            sketch_words as usize,
            delta_items as usize,
            &mut self.run_buf,
        );
        if delta_items > 0 {
            self.tally.folds += 1;
            self.tally.delta_replayed += u64::from(delta_items);
        }
        self.resident_bytes -= self.arena.class_bytes(handle.class);
        self.arena.free(handle);
        self.resident_bytes += self.pinned_heap_bytes;
        let slot = &mut self.pinned[idx];
        slot.key = key;
        slot.live = true;
        slot.front = None;
        self.index.get_mut(&key).expect("pin of unknown key").state =
            KeyState::Pinned { idx: idx as u32 };
        self.resident_keys -= 1;
        self.pinned_keys += 1;
        self.tally.pins += 1;
    }

    /// Demote a hot key back to a packed arena slot.
    fn demote(&mut self, idx: usize) {
        let key = self.pinned[idx].key;
        let needed = Self::packed_words(&self.pinned[idx].sketch);
        let class = self.arena.class_for(needed + Self::headroom(needed));
        let handle = self.arena.alloc(class);
        let written =
            Self::write_sketch_section(&self.pinned[idx].sketch, self.arena.slot_mut(handle));
        debug_assert_eq!(written, needed);
        self.resident_bytes += self.arena.class_bytes(class);
        self.resident_bytes -= self.pinned_heap_bytes;
        let slot = &mut self.pinned[idx];
        slot.live = false;
        slot.front = None;
        self.pinned_free.push(idx as u32);
        self.index
            .get_mut(&key)
            .expect("demote of unknown key")
            .state = KeyState::Resident {
            handle,
            sketch_words: needed as u32,
            delta_items: 0,
        };
        self.pinned_keys -= 1;
        self.resident_keys += 1;
        self.tally.demotions += 1;
    }

    /// Restore a spilled key into a fresh packed slot, bitwise-identically
    /// (the canonical codec enforces seed/config and round-trips exactly).
    /// The key's log range is dead afterwards; when enough of the log is
    /// dead, compact it in the same breath.
    fn restore(&mut self, key: u64) -> Result<()> {
        let KeyState::Spilled { offset, len } = self.index[&key].state else {
            return Ok(());
        };
        self.spill.read(offset, len, &mut self.spill_buf)?;
        let bytes = Bytes::from(self.spill_buf.as_slice());
        decode_sketch_into(&mut self.scratch, bytes, &mut self.decode_scratch)?;
        self.writeback_scratch(key, None);
        self.spilled_keys -= 1;
        self.resident_keys += 1;
        self.tally.restores += 1;
        self.tally.restored_bytes += u64::from(len);
        self.spill.note_dead(len);
        if self.spill.should_compact() {
            self.compact_spill()?;
        }
        Ok(())
    }

    /// Rewrite the spill log to hold only the still-spilled keys' records
    /// and point their index entries at the new offsets. Restores stay
    /// bitwise-identical across the move: the records themselves are
    /// copied verbatim, only their offsets change.
    fn compact_spill(&mut self) -> Result<()> {
        let mut keys: Vec<u64> = Vec::with_capacity(self.spilled_keys as usize);
        let mut live: Vec<(u64, u32)> = Vec::with_capacity(self.spilled_keys as usize);
        for (&key, entry) in &self.index {
            if let KeyState::Spilled { offset, len } = entry.state {
                keys.push(key);
                live.push((offset, len));
            }
        }
        // `compact` sorts by offset; offsets are unique, so sorting the
        // keys by the same offset keeps the two vectors aligned.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by_key(|&i| live[i].0);
        let keys: Vec<u64> = order.iter().map(|&i| keys[i]).collect();
        let mut live: Vec<(u64, u32)> = order.iter().map(|&i| live[i]).collect();

        let reclaimed = self.spill.compact(&mut live)?;
        for (key, &(offset, len)) in keys.iter().zip(&live) {
            self.index
                .get_mut(key)
                .expect("compacted key vanished")
                .state = KeyState::Spilled { offset, len };
        }
        self.tally.compactions += 1;
        self.tally.reclaimed_bytes += reclaimed;
        Ok(())
    }

    /// Evict the least-recently-used evictable key to the spill log.
    /// Returns `false` when nothing evictable remains (or the disk refused
    /// the spill — the victim stays resident).
    fn evict_one(&mut self) -> bool {
        while let Some((key, stamp)) = self.lru.pop_front() {
            let Some(entry) = self.index.get(&key) else {
                continue;
            };
            if entry.last_stamp != stamp {
                continue;
            }
            let mut state = entry.state;
            if let KeyState::Pinned { idx } = state {
                self.demote(idx as usize);
                state = self.index[&key].state;
            }
            let KeyState::Resident {
                handle,
                sketch_words,
                delta_items,
            } = state
            else {
                continue;
            };
            Self::parse_into(
                &mut self.scratch,
                self.arena.slot(handle),
                sketch_words as usize,
                delta_items as usize,
                &mut self.run_buf,
            );
            if delta_items > 0 {
                self.tally.folds += 1;
                self.tally.delta_replayed += u64::from(delta_items);
            }
            let bytes = encode_sketch(&self.scratch);
            match self.spill.append(&bytes) {
                Ok((offset, len)) => {
                    self.resident_bytes -= self.arena.class_bytes(handle.class);
                    self.arena.free(handle);
                    let entry = self.index.get_mut(&key).expect("evict of unknown key");
                    entry.state = KeyState::Spilled { offset, len };
                    self.resident_keys -= 1;
                    self.spilled_keys += 1;
                    self.tally.evictions += 1;
                    self.tally.spilled_bytes += u64::from(len);
                    return true;
                }
                Err(_) => {
                    // Disk refused the spill: keep the victim resident
                    // (its slot is untouched) and stop evicting.
                    self.lru.push_back((key, stamp));
                    return false;
                }
            }
        }
        false
    }

    /// Evict until the shard is back under its byte budget or nothing
    /// evictable remains.
    fn maybe_evict(&mut self) {
        while self.resident_bytes > self.budget {
            if !self.evict_one() {
                break;
            }
        }
    }

    /// Ingest one staged key-run (all entries share `key`, arrival order
    /// preserved). The steady-state resident path holds a single index
    /// borrow: epoch/LRU bookkeeping, the hot check, and the delta append
    /// all happen against one `get_mut`, with the arena accessed as a
    /// disjoint field. Only the rare transitions (create, restore, pin,
    /// slot-full fold) release the borrow.
    fn ingest_run(&mut self, key: u64, run: &[Staged<V>]) -> Result<()> {
        self.tally.key_runs += 1;
        self.tally.items += run.len() as u64;
        let ew = Self::ENTRY_WORDS;
        let seen = self.seen_epoch;
        let threshold = self.hot_threshold;
        self.stamp += 1;
        let stamp = self.stamp;

        match self.index.get(&key).map(|e| e.state) {
            None => {
                let handle = self.arena.alloc(0);
                self.resident_bytes += self.arena.class_bytes(0);
                self.index.insert(
                    key,
                    KeyEntry {
                        state: KeyState::Resident {
                            handle,
                            sketch_words: 0,
                            delta_items: 0,
                        },
                        last_stamp: 0,
                        epoch: seen,
                        epoch_items: 0,
                    },
                );
                self.resident_keys += 1;
            }
            Some(KeyState::Spilled { .. }) => self.restore(key)?,
            Some(_) => {}
        }

        let entry = self.index.get_mut(&key).expect("entry ensured above");
        if entry.epoch != seen {
            entry.epoch = seen;
            entry.epoch_items = 0;
        }
        entry.epoch_items = entry.epoch_items.saturating_add(run.len() as u32);
        entry.last_stamp = stamp;
        let hot = threshold != 0 && entry.epoch_items >= threshold;

        match entry.state {
            KeyState::Pinned { idx } => self.ingest_pinned(idx as usize, run),
            KeyState::Resident { .. } if hot => {
                self.pin(key);
                let KeyState::Pinned { idx } = self.index[&key].state else {
                    unreachable!("pin left the key unpinned");
                };
                self.ingest_pinned(idx as usize, run);
            }
            KeyState::Resident { .. } => {
                let mut rest = run;
                loop {
                    let entry = self.index.get_mut(&key).expect("entry ensured above");
                    let KeyState::Resident {
                        handle,
                        sketch_words,
                        mut delta_items,
                    } = entry.state
                    else {
                        unreachable!("fold left the key non-resident");
                    };
                    let cap = self.arena.class_words(handle.class);
                    let base = sketch_words as usize + delta_items as usize * ew;
                    let space = (cap - base) / ew;
                    let take = space.min(rest.len());
                    if take > 0 {
                        let slot = self.arena.slot_mut(handle);
                        for (i, item) in rest[..take].iter().enumerate() {
                            let at = base + i * ew;
                            slot[at] = item.label;
                            if V::WORDS == 1 {
                                slot[at + 1] = item.payload.to_word();
                            }
                        }
                        delta_items += take as u32;
                        entry.state = KeyState::Resident {
                            handle,
                            sketch_words,
                            delta_items,
                        };
                        rest = &rest[take..];
                    }
                    if rest.is_empty() {
                        break;
                    }
                    // Slot full: fold the delta in, which re-sizes the
                    // slot with fresh delta headroom.
                    self.fold_resident(key, true);
                }
            }
            KeyState::Spilled { .. } => unreachable!("spilled key restored above"),
        }
        self.note_touch(key, stamp);
        Ok(())
    }

    /// Hot-tier ingest: straight through the merging batch kernel.
    fn ingest_pinned(&mut self, idx: usize, run: &[Staged<V>]) {
        self.run_buf.clear();
        self.run_buf
            .extend(run.iter().map(|s| (s.label, s.payload)));
        self.pinned[idx]
            .sketch
            .insert_batch_merging_with(&self.run_buf);
    }

    /// Point query. `None` for a key the store has never seen.
    fn estimate(&mut self, key: u64) -> Result<Option<Estimate>> {
        self.tally.queries += 1;
        let Some(entry) = self.index.get(&key) else {
            return Ok(None);
        };
        let est = match entry.state {
            KeyState::Pinned { idx } => {
                let idx = idx as usize;
                if let Some(front) = self.pinned[idx].front {
                    if front.epoch == self.seen_epoch {
                        self.tally.front_hits += 1;
                        self.touch_lru(key);
                        return Ok(Some(front.estimate));
                    }
                }
                let estimate = self.pinned[idx].sketch.estimate_distinct();
                self.pinned[idx].front = Some(FrontCache {
                    estimate,
                    epoch: self.seen_epoch,
                });
                self.tally.front_refreshes += 1;
                estimate
            }
            KeyState::Resident { .. } => {
                self.fold_resident(key, false);
                self.scratch.estimate_distinct()
            }
            KeyState::Spilled { .. } => {
                self.restore(key)?;
                self.fold_resident(key, false);
                self.scratch.estimate_distinct()
            }
        };
        self.touch_lru(key);
        Ok(Some(est))
    }

    /// Items observed for `key` (exact, all tiers).
    fn items_observed(&mut self, key: u64) -> Result<Option<u64>> {
        let Some(entry) = self.index.get(&key) else {
            return Ok(None);
        };
        let items = match entry.state {
            KeyState::Pinned { idx } => self.pinned[idx as usize].sketch.items_observed(),
            KeyState::Resident { .. } => {
                self.fold_resident(key, false);
                self.scratch.items_observed()
            }
            KeyState::Spilled { .. } => {
                self.restore(key)?;
                self.fold_resident(key, false);
                self.scratch.items_observed()
            }
        };
        self.touch_lru(key);
        Ok(Some(items))
    }

    /// Canonical wire bytes of `key`'s sketch — the authoritative state
    /// the per-key oracle compares against a standalone sketch.
    fn canonical_bytes(&mut self, key: u64) -> Result<Option<Bytes>> {
        let Some(entry) = self.index.get(&key) else {
            return Ok(None);
        };
        let bytes = match entry.state {
            KeyState::Pinned { idx } => encode_sketch(&self.pinned[idx as usize].sketch),
            KeyState::Resident { .. } => {
                self.fold_resident(key, false);
                encode_sketch(&self.scratch)
            }
            KeyState::Spilled { .. } => {
                self.restore(key)?;
                self.fold_resident(key, false);
                encode_sketch(&self.scratch)
            }
        };
        self.touch_lru(key);
        Ok(Some(bytes))
    }
}

/// Keyed multi-tenant sketch store. See the [module docs](self) for the
/// tier/locking/eviction design.
///
/// ```
/// use gt_store::{SketchStore, StoreOptions};
/// use gt_core::SketchConfig;
/// let config = SketchConfig::new(0.2, 0.2).unwrap();
/// let store = SketchStore::<()>::new(&config, 7, StoreOptions::default()).unwrap();
/// store.extend(&[(1, 100), (2, 200), (1, 101)]).unwrap();
/// assert_eq!(store.items_observed(1).unwrap(), Some(2));
/// assert!(store.estimate(1).unwrap().is_some());
/// assert!(store.estimate(99).unwrap().is_none());
/// ```
pub struct SketchStore<V: StorePayload = ()> {
    config: SketchConfig,
    master_seed: u64,
    shards: Vec<CachePadded<Mutex<ShardState<V>>>>,
    shard_mask: u64,
    byte_budget: usize,
    epoch: AtomicU64,
    items_since_epoch: AtomicU64,
    epoch_item_target: u64,
    spill_dir: PathBuf,
    owns_spill_dir: bool,
}

/// A [`SketchStore`] counting distinct labels per key (no payloads).
pub type DistinctStore = SketchStore<()>;

impl<V: StorePayload> SketchStore<V> {
    /// Build a store whose per-key sketches all share `config` and
    /// `master_seed` (so any key unions losslessly with any coordinated
    /// peer).
    ///
    /// # Errors
    /// [`crate::StoreError::Io`] if the spill directory or a shard log cannot be
    /// created.
    pub fn new(config: &SketchConfig, master_seed: u64, options: StoreOptions) -> Result<Self> {
        let requested = if options.shards == 0 {
            effective_workers()
        } else {
            options.shards
        };
        let shard_count = requested.next_power_of_two();
        let (spill_dir, owns_spill_dir) = match &options.spill_dir {
            Some(dir) => (dir.clone(), false),
            None => {
                static UNIQ: AtomicU64 = AtomicU64::new(0);
                let mut dir = std::env::temp_dir();
                dir.push(format!(
                    "gt-store-{}-{}",
                    std::process::id(),
                    UNIQ.fetch_add(1, Ordering::Relaxed)
                ));
                (dir, true)
            }
        };
        std::fs::create_dir_all(&spill_dir)?;
        let prototype = GtSketch::<V>::new(config, master_seed);
        let ew = 1 + V::WORDS;
        let trials = config.trials();
        let full = trials * (2 + config.capacity() * ew);
        let max_words = full + (full / 4).max(8 * ew);
        let min_words = 2 * trials + 6;
        let budget = (options.byte_budget / shard_count).max(1);
        let shards = (0..shard_count)
            .map(|i| {
                let spill = SpillLog::create(&spill_dir.join(format!("shard-{i:03}.spill")))?;
                Ok(CachePadded::new(Mutex::new(ShardState {
                    index: HashMap::new(),
                    arena: SlotArena::new(min_words, max_words),
                    pinned: Vec::new(),
                    pinned_free: Vec::new(),
                    prototype: prototype.clone(),
                    scratch: prototype.clone(),
                    run_buf: Vec::new(),
                    spill,
                    spill_buf: Vec::new(),
                    decode_scratch: DecodeScratch::new(),
                    lru: VecDeque::new(),
                    stamp: 0,
                    resident_bytes: 0,
                    resident_keys: 0,
                    pinned_keys: 0,
                    spilled_keys: 0,
                    seen_epoch: 0,
                    budget,
                    hot_threshold: options.hot_threshold,
                    pinned_heap_bytes: prototype.heap_bytes(),
                    tally: ShardTally::default(),
                })))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SketchStore {
            config: *config,
            master_seed,
            shards,
            shard_mask: shard_count as u64 - 1,
            byte_budget: options.byte_budget,
            epoch: AtomicU64::new(0),
            items_since_epoch: AtomicU64::new(0),
            epoch_item_target: options.epoch_items,
            spill_dir,
            owns_spill_dir,
        })
    }

    fn shard_of(&self, key: u64) -> usize {
        (mix64(key ^ 0xC3C3_C3C3_C3C3_C3C3) & self.shard_mask) as usize
    }

    fn note_items(&self, n: u64) {
        if self.epoch_item_target == 0 {
            return;
        }
        let before = self.items_since_epoch.fetch_add(n, Ordering::Relaxed);
        if before + n >= self.epoch_item_target {
            self.items_since_epoch.store(0, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn extend_iter(&self, items: impl IntoIterator<Item = (u64, u64, V)>) -> Result<()> {
        let mut stage: Vec<Staged<V>> = Vec::with_capacity(STORE_STAGE);
        let mut iter = items.into_iter();
        loop {
            stage.clear();
            while stage.len() < STORE_STAGE {
                let Some((key, label, payload)) = iter.next() else {
                    break;
                };
                stage.push(Staged {
                    shard: self.shard_of(key) as u32,
                    seq: stage.len() as u32,
                    key,
                    label,
                    payload,
                });
            }
            if stage.is_empty() {
                return Ok(());
            }
            // Group by (shard, key); `seq` keeps arrival order within a
            // key so keep-first payload semantics survive the sort.
            stage.sort_unstable_by_key(|s| (s.shard, s.key, s.seq));
            let staged = stage.len() as u64;
            let mut i = 0;
            while i < stage.len() {
                let shard = stage[i].shard;
                let mut j = i;
                while j < stage.len() && stage[j].shard == shard {
                    j += 1;
                }
                let global = self.epoch.load(Ordering::Relaxed);
                let mut guard = self.shards[shard as usize].lock();
                guard.sync_epoch(global);
                let mut k = i;
                while k < j {
                    let key = stage[k].key;
                    let mut m = k;
                    while m < j && stage[m].key == key {
                        m += 1;
                    }
                    guard.ingest_run(key, &stage[k..m])?;
                    k = m;
                }
                guard.maybe_evict();
                drop(guard);
                i = j;
            }
            self.note_items(staged);
        }
    }

    /// Ingest `(key, label)` pairs with the default payload. Thread-safe:
    /// any number of threads may call this concurrently.
    ///
    /// # Errors
    /// Spill-log I/O or decode errors surfaced while restoring a spilled
    /// key touched by this batch; items staged before the failing run are
    /// ingested, the rest of the batch is dropped.
    pub fn extend(&self, items: &[(u64, u64)]) -> Result<()> {
        self.extend_iter(items.iter().map(|&(key, label)| (key, label, V::default())))
    }

    /// Ingest `(key, label, payload)` triples (keep-first/merge payload
    /// semantics per the sketch's payload type, exactly as a standalone
    /// sketch would apply them in arrival order).
    ///
    /// # Errors
    /// As [`SketchStore::extend`].
    pub fn extend_with(&self, items: &[(u64, u64, V)]) -> Result<()> {
        self.extend_iter(items.iter().copied())
    }

    /// Point query: the distinct estimate for `key`, or `None` if the
    /// store has never seen it. Hot keys answer from the front cache (at
    /// most one epoch stale); everything else folds authoritative state.
    ///
    /// # Errors
    /// As [`SketchStore::extend`] (querying a spilled key restores it).
    pub fn estimate(&self, key: u64) -> Result<Option<Estimate>> {
        let global = self.epoch.load(Ordering::Relaxed);
        let mut guard = self.shards[self.shard_of(key)].lock();
        guard.sync_epoch(global);
        let out = guard.estimate(key);
        guard.maybe_evict();
        out
    }

    /// Exact items observed for `key` (always authoritative, never the
    /// front cache), or `None` for an unknown key.
    ///
    /// # Errors
    /// As [`SketchStore::estimate`].
    pub fn items_observed(&self, key: u64) -> Result<Option<u64>> {
        let global = self.epoch.load(Ordering::Relaxed);
        let mut guard = self.shards[self.shard_of(key)].lock();
        guard.sync_epoch(global);
        let out = guard.items_observed(key);
        guard.maybe_evict();
        out
    }

    /// Canonical wire bytes of `key`'s sketch — bitwise identical to
    /// `encode_sketch` of a standalone coordinated [`GtSketch`] fed the
    /// same labels, whatever tier the key is in (a spilled key is restored
    /// first). `None` for an unknown key.
    ///
    /// # Errors
    /// As [`SketchStore::estimate`].
    pub fn canonical_bytes(&self, key: u64) -> Result<Option<Bytes>> {
        let global = self.epoch.load(Ordering::Relaxed);
        let mut guard = self.shards[self.shard_of(key)].lock();
        guard.sync_epoch(global);
        let out = guard.canonical_bytes(key);
        guard.maybe_evict();
        out
    }

    /// Advance the store epoch: shards refresh hot-key front caches and
    /// demote cooled keys on their next lock acquisition. Also advanced
    /// automatically every [`StoreOptions::epoch_items`] ingested items.
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Keys tracked across all tiers (resident + pinned + spilled).
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().index.len()).sum()
    }

    /// Budgeted resident bytes across all shards (live packed slots plus
    /// pinned sketch heap).
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().resident_bytes).sum()
    }

    /// The configured total byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Shard count (power of two, sized from [`effective_workers`] unless
    /// overridden).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared per-key sketch configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The shared master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Directory holding the per-shard spill logs.
    pub fn spill_dir(&self) -> &Path {
        &self.spill_dir
    }

    /// Consistent-cut metrics: every shard lock is acquired (in index
    /// order) before the first counter is read, per the metrics
    /// lock-ordering rule — cross-shard sums in the snapshot are exact.
    pub fn metrics_snapshot(&self) -> StoreMetricsSnapshot {
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut snap = StoreMetricsSnapshot {
            shards: guards.len() as u64,
            budget_bytes: self.byte_budget as u64,
            ..StoreMetricsSnapshot::default()
        };
        for g in &guards {
            snap.absorb_tally(&g.tally);
            snap.keys += g.index.len() as u64;
            snap.resident_keys += g.resident_keys;
            snap.pinned_keys += g.pinned_keys;
            snap.spilled_keys += g.spilled_keys;
            snap.resident_bytes += g.resident_bytes as u64;
            snap.arena_bytes += g.arena.allocated_bytes() as u64;
        }
        snap
    }
}

impl<V: StorePayload> Drop for SketchStore<V> {
    fn drop(&mut self) {
        for shard in &self.shards {
            let guard = shard.lock();
            let _ = std::fs::remove_file(guard.spill.path());
        }
        if self.owns_spill_dir {
            let _ = std::fs::remove_dir(&self.spill_dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::DistinctSketch;
    use gt_hash::fold61;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.2, 0.2).unwrap()
    }

    fn tiny_cfg() -> SketchConfig {
        SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_hash::HashFamilyKind::Pairwise).unwrap()
    }

    fn opts(budget: usize) -> StoreOptions {
        StoreOptions::default()
            .with_shards(2)
            .with_byte_budget(budget)
            .with_epoch_items(0)
    }

    #[test]
    fn per_key_state_matches_standalone_sketches() {
        let config = cfg();
        let store = DistinctStore::new(&config, 11, opts(64 << 20)).unwrap();
        let keys = 17u64;
        let mut items = Vec::new();
        for i in 0..20_000u64 {
            items.push((i % keys, fold61(i * 31)));
        }
        store.extend(&items).unwrap();
        for key in 0..keys {
            let mut standalone = DistinctSketch::new(&config, 11);
            standalone.extend_labels(items.iter().filter(|&&(k, _)| k == key).map(|&(_, l)| l));
            let expect = encode_sketch(&standalone);
            let got = store.canonical_bytes(key).unwrap().unwrap();
            assert_eq!(got, expect, "key {key}");
            assert_eq!(
                store.items_observed(key).unwrap().unwrap(),
                standalone.items_observed()
            );
            assert_eq!(
                store.estimate(key).unwrap().unwrap().value,
                standalone.estimate_distinct().value
            );
        }
        assert_eq!(store.key_count(), keys as usize);
        assert!(store.estimate(keys + 1).unwrap().is_none());
    }

    #[test]
    fn eviction_restores_bitwise_and_respects_budget() {
        let config = tiny_cfg();
        // A budget small enough that most of 600 keys cannot stay
        // resident, forcing evict/restore cycles mid-stream.
        let store = DistinctStore::new(&config, 5, opts(16 << 10).with_hot_threshold(0)).unwrap();
        let keys = 600u64;
        let mut items = Vec::new();
        for round in 0..6u64 {
            for key in 0..keys {
                for j in 0..4u64 {
                    items.push((key, fold61(key * 1000 + round * 10 + j)));
                }
            }
        }
        store.extend(&items).unwrap();
        let snap = store.metrics_snapshot();
        assert!(snap.evictions > 0, "budget never forced an eviction");
        assert!(snap.restores > 0, "revisited keys never restored");
        assert!(
            snap.resident_bytes <= snap.budget_bytes,
            "resident {} exceeds budget {}",
            snap.resident_bytes,
            snap.budget_bytes
        );
        // Every key still matches its standalone oracle exactly.
        for key in (0..keys).step_by(41) {
            let mut standalone = DistinctSketch::new(&config, 5);
            standalone.extend_labels(items.iter().filter(|&&(k, _)| k == key).map(|&(_, l)| l));
            assert_eq!(
                store.canonical_bytes(key).unwrap().unwrap(),
                encode_sketch(&standalone),
                "key {key}"
            );
        }
    }

    #[test]
    fn spill_compaction_reclaims_bytes_and_keeps_restores_bitwise() {
        let config = tiny_cfg();
        // Tight budget + many rounds of key revisits: every revisit of a
        // spilled key restores it (killing its log record) and the next
        // budget squeeze spills it again (appending a new one), so dead
        // bytes accumulate until the dead-fraction threshold fires.
        let store = DistinctStore::new(&config, 5, opts(16 << 10).with_hot_threshold(0)).unwrap();
        let keys = 600u64;
        let mut items = Vec::new();
        for round in 0..10u64 {
            let mut batch = Vec::new();
            for key in 0..keys {
                for j in 0..3u64 {
                    batch.push((key, fold61(key * 1000 + round * 10 + j)));
                }
            }
            store.extend(&batch).unwrap();
            items.extend(batch);
        }
        let snap = store.metrics_snapshot();
        assert!(snap.restores > 0, "churn never restored a key");
        assert!(
            snap.compactions > 0,
            "dead fraction never triggered compaction"
        );
        assert!(snap.reclaimed_bytes > 0, "compaction reclaimed nothing");
        assert!(
            snap.reclaimed_bytes <= snap.spilled_bytes,
            "cannot reclaim more than was ever spilled"
        );
        // Compaction moved records; every key — spilled or resident —
        // still round-trips bitwise-identically to its standalone oracle.
        for key in (0..keys).step_by(29) {
            let mut standalone = DistinctSketch::new(&config, 5);
            standalone.extend_labels(items.iter().filter(|&&(k, _)| k == key).map(|&(_, l)| l));
            assert_eq!(
                store.canonical_bytes(key).unwrap().unwrap(),
                encode_sketch(&standalone),
                "key {key}"
            );
        }
        assert!(snap.to_json().contains("\"compactions\":"));
    }

    #[test]
    fn hot_keys_pin_and_front_cache_serves_queries() {
        let config = cfg();
        let store = DistinctStore::new(&config, 9, opts(64 << 20).with_hot_threshold(64)).unwrap();
        let mut items = Vec::new();
        for i in 0..5_000u64 {
            items.push((7, fold61(i)));
            if i % 50 == 0 {
                items.push((i, fold61(i)));
            }
        }
        store.extend(&items).unwrap();
        let snap = store.metrics_snapshot();
        assert!(snap.pins >= 1, "hot key never pinned");
        assert_eq!(snap.pinned_keys, 1);
        // Epoch boundary refreshes the front; repeated queries hit it.
        store.advance_epoch();
        let first = store.estimate(7).unwrap().unwrap();
        for _ in 0..5 {
            assert_eq!(store.estimate(7).unwrap().unwrap(), first);
        }
        let snap = store.metrics_snapshot();
        assert!(snap.front_hits >= 5, "front cache never served a query");
        // The authoritative bytes still match a standalone sketch.
        let mut standalone = DistinctSketch::new(&config, 9);
        standalone.extend_labels(items.iter().filter(|&&(k, _)| k == 7).map(|&(_, l)| l));
        assert_eq!(
            store.canonical_bytes(7).unwrap().unwrap(),
            encode_sketch(&standalone)
        );
    }

    #[test]
    fn cooled_hot_keys_demote_at_epoch_boundaries() {
        let config = tiny_cfg();
        let store = DistinctStore::new(&config, 3, opts(64 << 20).with_hot_threshold(32)).unwrap();
        let hot: Vec<(u64, u64)> = (0..200u64).map(|i| (1, fold61(i))).collect();
        store.extend(&hot).unwrap();
        assert_eq!(store.metrics_snapshot().pinned_keys, 1);
        // Two quiet epochs: the key's per-epoch traffic is zero, so the
        // first sync after the boundary demotes it.
        store.advance_epoch();
        store.extend(&[(2, fold61(9_999))]).unwrap();
        store.advance_epoch();
        store.extend(&[(2, fold61(9_998))]).unwrap();
        let snap = store.metrics_snapshot();
        assert_eq!(snap.pinned_keys, 0, "cooled key stayed pinned");
        assert!(snap.demotions >= 1);
        // State survived the demotion bit-for-bit.
        let mut standalone = DistinctSketch::new(&config, 3);
        standalone.extend_labels(hot.iter().map(|&(_, l)| l));
        assert_eq!(
            store.canonical_bytes(1).unwrap().unwrap(),
            encode_sketch(&standalone)
        );
    }

    #[test]
    fn payload_store_matches_standalone_merging_sketch() {
        let config = tiny_cfg();
        let store = SketchStore::<u64>::new(&config, 13, opts(64 << 20)).unwrap();
        let mut items = Vec::new();
        for i in 0..3_000u64 {
            // Duplicate labels with distinct payloads exercise the
            // keep-first reconciliation through the delta replay.
            items.push((i % 5, fold61(i % 400), i));
        }
        store.extend_with(&items).unwrap();
        for key in 0..5u64 {
            let mut standalone = GtSketch::<u64>::new(&config, 13);
            for &(k, l, p) in &items {
                if k == key {
                    standalone.insert_merging_with(l, p);
                }
            }
            assert_eq!(
                store.canonical_bytes(key).unwrap().unwrap(),
                encode_sketch(&standalone),
                "key {key}"
            );
        }
    }

    #[test]
    fn concurrent_keyed_ingest_matches_sequential() {
        let config = tiny_cfg();
        let store = DistinctStore::new(&config, 21, opts(64 << 20)).unwrap();
        let threads = 4usize;
        let per_thread = 4_000u64;
        crossbeam::scope(|scope| {
            for t in 0..threads as u64 {
                let store = &store;
                scope.spawn(move |_| {
                    let items: Vec<(u64, u64)> = (0..per_thread)
                        .map(|i| ((i * 7 + t) % 97, fold61(t * per_thread + i)))
                        .collect();
                    store.extend(&items).unwrap();
                });
            }
        })
        .unwrap();
        // The store saw every item exactly once (count/ordering invariant,
        // no wall-clock assertions per the de-flake rule).
        let snap = store.metrics_snapshot();
        assert_eq!(snap.items, threads as u64 * per_thread);
        // Each key's state equals a standalone sketch over that key's
        // labels — label sets are interleaving-independent.
        for key in (0..97u64).step_by(13) {
            let mut standalone = DistinctSketch::new(&config, 21);
            for t in 0..threads as u64 {
                standalone.extend_labels(
                    (0..per_thread)
                        .filter(|i| (i * 7 + t) % 97 == key)
                        .map(|i| fold61(t * per_thread + i)),
                );
            }
            assert_eq!(
                store.canonical_bytes(key).unwrap().unwrap(),
                encode_sketch(&standalone),
                "key {key}"
            );
        }
    }

    #[test]
    fn metrics_snapshot_tiers_sum_to_key_count() {
        let config = tiny_cfg();
        let store = DistinctStore::new(&config, 17, opts(24 << 10)).unwrap();
        let items: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i % 900, fold61(i))).collect();
        store.extend(&items).unwrap();
        let snap = store.metrics_snapshot();
        assert_eq!(
            snap.resident_keys + snap.pinned_keys + snap.spilled_keys,
            snap.keys
        );
        assert_eq!(snap.keys as usize, store.key_count());
        assert_eq!(snap.items, items.len() as u64);
        assert!(snap.arena_bytes > 0);
        let json = snap.to_json();
        assert!(json.contains("\"keys\":900"));
    }

    #[test]
    fn spill_files_live_in_the_configured_dir_and_are_cleaned_up() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("gt-store-cfgdir-{}", std::process::id()));
        {
            let store =
                DistinctStore::new(&tiny_cfg(), 1, opts(1 << 10).with_spill_dir(&dir)).unwrap();
            let items: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i % 200, fold61(i))).collect();
            store.extend(&items).unwrap();
            assert!(store.metrics_snapshot().evictions > 0);
            let logs = std::fs::read_dir(&dir).unwrap().count();
            assert_eq!(logs, store.shard_count());
        }
        // Drop removed the shard logs but kept the user-provided dir.
        assert!(dir.exists());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir(&dir).ok();
    }
}
