//! Per-shard on-disk spill log for evicted sketch state.
//!
//! Each shard owns one append-only log file. Evicting a key folds its
//! packed state into canonical wire bytes (`gt_streams::encode_sketch`)
//! and appends them here; the index entry keeps `(offset, len)`. Restoring
//! reads that exact range back and decodes it — the canonical codec is
//! bitwise round-trip stable, so a restored key is indistinguishable from
//! one that never left memory (the per-key oracle test asserts exactly
//! this across evict/restore cycles).
//!
//! The log is write-once per record: a key that is restored and later
//! evicted again appends a *new* record, and the old range becomes dead
//! space. That is the classic log-structured trade — sequential appends
//! and no in-place rewrites in exchange for garbage. The owning shard
//! reports each dead range via [`SpillLog::note_dead`]; once the dead
//! fraction crosses [`SpillLog::should_compact`]'s threshold the shard
//! calls [`SpillLog::compact`], which slides the live records forward
//! in place (sorted by offset, so every move is to a strictly smaller
//! offset — the copy never clobbers unread bytes), truncates the file,
//! and hands back the rewritten offsets. [`SpillLog::appended_bytes`]
//! reports the raw log size so the bench can show the amplification.
//!
//! Everything here is plain seek + read/write on one `File` handle under
//! the owning shard's lock — no positional-IO platform traps, no unsafe.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Never compact logs with fewer dead bytes than this — rewriting a few
/// KiB buys nothing and churns the file handle.
const COMPACT_MIN_DEAD_BYTES: u64 = 4096;

/// Append-only spill log owned by one shard.
#[derive(Debug)]
pub struct SpillLog {
    file: File,
    path: PathBuf,
    end: u64,
    records: u64,
    dead: u64,
}

impl SpillLog {
    /// Create (truncating any stale file) the shard log at `path`.
    ///
    /// # Errors
    /// Propagates the underlying `File` creation error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            end: 0,
            records: 0,
            dead: 0,
        })
    }

    /// Append one encoded sketch; returns the `(offset, len)` the caller
    /// must remember to read it back.
    ///
    /// # Errors
    /// Propagates seek/write errors.
    pub fn append(&mut self, bytes: &[u8]) -> std::io::Result<(u64, u32)> {
        let offset = self.end;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(bytes)?;
        self.end += bytes.len() as u64;
        self.records += 1;
        Ok((offset, bytes.len() as u32))
    }

    /// Read the record at `(offset, len)` into `buf` (cleared first).
    ///
    /// # Errors
    /// Propagates seek/read errors; a short read surfaces as
    /// `UnexpectedEof`.
    pub fn read(&mut self, offset: u64, len: u32, buf: &mut Vec<u8>) -> std::io::Result<()> {
        buf.clear();
        buf.resize(len as usize, 0);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    /// Mark the record of `len` bytes at its old range as dead (its key
    /// was restored, so the range will never be read again).
    pub fn note_dead(&mut self, len: u32) {
        self.dead += u64::from(len);
    }

    /// Bytes currently dead (noted via [`SpillLog::note_dead`], not yet
    /// reclaimed by compaction).
    pub fn dead_bytes(&self) -> u64 {
        self.dead
    }

    /// Bytes still reachable through some index entry.
    pub fn live_bytes(&self) -> u64 {
        self.end - self.dead
    }

    /// Whether the dead fraction warrants a compaction pass (≥ 50% dead
    /// and at least a few KiB to reclaim).
    pub fn should_compact(&self) -> bool {
        self.dead >= COMPACT_MIN_DEAD_BYTES && 2 * self.dead >= self.end
    }

    /// Rewrite the log to contain exactly the `live` records, in offset
    /// order, and truncate the reclaimed tail. Each entry's offset is
    /// updated in place to its post-compaction position — the caller
    /// writes them back to its index. Returns the bytes reclaimed.
    ///
    /// The copy is safe in place: records are processed in ascending
    /// offset order and every destination offset (a prefix sum of live
    /// lengths) is ≤ the source offset, so a move only overwrites dead
    /// space or bytes already copied out.
    ///
    /// # Errors
    /// Propagates seek/read/write/truncate errors. On error the log may
    /// hold a partially-moved record; callers should treat that as fatal
    /// for the shard (the store propagates it out of the ingest path).
    pub fn compact(&mut self, live: &mut [(u64, u32)]) -> std::io::Result<u64> {
        live.sort_unstable_by_key(|&(offset, _)| offset);
        let mut buf = Vec::new();
        let mut write_at = 0u64;
        for record in live.iter_mut() {
            let (offset, len) = *record;
            debug_assert!(write_at <= offset, "live records overlap");
            if offset != write_at {
                buf.clear();
                buf.resize(len as usize, 0);
                self.file.seek(SeekFrom::Start(offset))?;
                self.file.read_exact(&mut buf)?;
                self.file.seek(SeekFrom::Start(write_at))?;
                self.file.write_all(&buf)?;
            }
            record.0 = write_at;
            write_at += u64::from(len);
        }
        let reclaimed = self.end - write_at;
        self.file.set_len(write_at)?;
        self.end = write_at;
        self.dead = 0;
        Ok(reclaimed)
    }

    /// Current log size in bytes: live records plus dead space not yet
    /// reclaimed by compaction.
    pub fn appended_bytes(&self) -> u64 {
        self.end
    }

    /// Total records ever appended.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path of the backing file (for cleanup by the owning store).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "gt-store-spilltest-{}-{name}.log",
            std::process::id()
        ));
        p
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = temp_log("roundtrip");
        let mut log = SpillLog::create(&path).unwrap();
        let a: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let b = vec![0xABu8; 17];
        let (off_a, len_a) = log.append(&a).unwrap();
        let (off_b, len_b) = log.append(&b).unwrap();
        assert_eq!(off_a, 0);
        assert_eq!(off_b, a.len() as u64);
        assert_eq!(log.records(), 2);
        assert_eq!(log.appended_bytes(), (a.len() + b.len()) as u64);

        let mut buf = Vec::new();
        // Reads in arbitrary order, interleaved with another append.
        log.read(off_b, len_b, &mut buf).unwrap();
        assert_eq!(buf, b);
        let (off_c, len_c) = log.append(&a).unwrap();
        log.read(off_a, len_a, &mut buf).unwrap();
        assert_eq!(buf, a);
        log.read(off_c, len_c, &mut buf).unwrap();
        assert_eq!(buf, a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_slides_live_records_and_truncates() {
        let path = temp_log("compact");
        let mut log = SpillLog::create(&path).unwrap();
        // Interleave live and dead records of uneven sizes.
        let payloads: Vec<Vec<u8>> = (0..8u8)
            .map(|i| vec![i ^ 0x5A; 100 + 37 * i as usize])
            .collect();
        let ranges: Vec<(u64, u32)> = payloads.iter().map(|p| log.append(p).unwrap()).collect();
        // Kill the even-indexed records.
        for i in (0..8).step_by(2) {
            log.note_dead(ranges[i].1);
        }
        let dead: u64 = (0..8).step_by(2).map(|i| u64::from(ranges[i].1)).sum();
        assert_eq!(log.dead_bytes(), dead);
        assert_eq!(log.live_bytes(), log.appended_bytes() - dead);

        // Present the live entries out of order: compact sorts by offset.
        let mut live: Vec<(u64, u32)> = [7usize, 1, 5, 3].iter().map(|&i| ranges[i]).collect();
        let reclaimed = log.compact(&mut live).unwrap();
        assert_eq!(reclaimed, dead);
        assert_eq!(log.dead_bytes(), 0);
        assert_eq!(log.appended_bytes(), log.live_bytes());
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            log.appended_bytes()
        );

        // Every live record reads back byte-identically at its new offset,
        // and the new offsets are densely packed in order.
        let mut buf = Vec::new();
        let mut expect_offset = 0u64;
        for (rec, idx) in live.iter().zip([1usize, 3, 5, 7]) {
            assert_eq!(rec.0, expect_offset);
            log.read(rec.0, rec.1, &mut buf).unwrap();
            assert_eq!(buf, payloads[idx], "record {idx} corrupted");
            expect_offset += u64::from(rec.1);
        }

        // The log keeps working after compaction.
        let (off, len) = log.append(&payloads[0]).unwrap();
        assert_eq!(off, expect_offset);
        log.read(off, len, &mut buf).unwrap();
        assert_eq!(buf, payloads[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_threshold_needs_both_fraction_and_floor() {
        let path = temp_log("threshold");
        let mut log = SpillLog::create(&path).unwrap();
        // 100% dead but tiny: below the byte floor.
        log.append(&[1u8; 100]).unwrap();
        log.note_dead(100);
        assert!(!log.should_compact());
        // Large log, small dead fraction: below the 50% threshold.
        log.append(&vec![2u8; 20_000]).unwrap();
        log.note_dead(4_000);
        assert!(!log.should_compact());
        // Push the dead fraction over half with the floor satisfied.
        log.note_dead(6_000);
        assert!(log.should_compact());
        // Kill the rest, then compact with an empty live set.
        log.note_dead(10_000);
        let mut live = Vec::new();
        let reclaimed = log.compact(&mut live).unwrap();
        assert_eq!(reclaimed, 20_100);
        assert_eq!(log.appended_bytes(), 0);
        assert!(!log.should_compact());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_read_is_an_error() {
        let path = temp_log("short");
        let mut log = SpillLog::create(&path).unwrap();
        let (off, _) = log.append(&[1, 2, 3]).unwrap();
        let mut buf = Vec::new();
        assert!(log.read(off, 10, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }
}
