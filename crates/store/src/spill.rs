//! Per-shard on-disk spill log for evicted sketch state.
//!
//! Each shard owns one append-only log file. Evicting a key folds its
//! packed state into canonical wire bytes (`gt_streams::encode_sketch`)
//! and appends them here; the index entry keeps `(offset, len)`. Restoring
//! reads that exact range back and decodes it — the canonical codec is
//! bitwise round-trip stable, so a restored key is indistinguishable from
//! one that never left memory (the per-key oracle test asserts exactly
//! this across evict/restore cycles).
//!
//! The log is write-once per record: a key that is restored and later
//! evicted again appends a *new* record, and the old range becomes dead
//! space. That is the classic log-structured trade — sequential appends
//! and no in-place rewrites in exchange for garbage that only a compaction
//! pass (out of scope here) would reclaim. [`SpillLog::appended_bytes`]
//! reports the raw log size so the bench can show the amplification.
//!
//! Everything here is plain seek + read/write on one `File` handle under
//! the owning shard's lock — no positional-IO platform traps, no unsafe.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Append-only spill log owned by one shard.
#[derive(Debug)]
pub struct SpillLog {
    file: File,
    path: PathBuf,
    end: u64,
    records: u64,
}

impl SpillLog {
    /// Create (truncating any stale file) the shard log at `path`.
    ///
    /// # Errors
    /// Propagates the underlying `File` creation error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            end: 0,
            records: 0,
        })
    }

    /// Append one encoded sketch; returns the `(offset, len)` the caller
    /// must remember to read it back.
    ///
    /// # Errors
    /// Propagates seek/write errors.
    pub fn append(&mut self, bytes: &[u8]) -> std::io::Result<(u64, u32)> {
        let offset = self.end;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(bytes)?;
        self.end += bytes.len() as u64;
        self.records += 1;
        Ok((offset, bytes.len() as u32))
    }

    /// Read the record at `(offset, len)` into `buf` (cleared first).
    ///
    /// # Errors
    /// Propagates seek/read errors; a short read surfaces as
    /// `UnexpectedEof`.
    pub fn read(&mut self, offset: u64, len: u32, buf: &mut Vec<u8>) -> std::io::Result<()> {
        buf.clear();
        buf.resize(len as usize, 0);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    /// Total bytes ever appended (live + dead records).
    pub fn appended_bytes(&self) -> u64 {
        self.end
    }

    /// Total records ever appended.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path of the backing file (for cleanup by the owning store).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "gt-store-spilltest-{}-{name}.log",
            std::process::id()
        ));
        p
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = temp_log("roundtrip");
        let mut log = SpillLog::create(&path).unwrap();
        let a: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let b = vec![0xABu8; 17];
        let (off_a, len_a) = log.append(&a).unwrap();
        let (off_b, len_b) = log.append(&b).unwrap();
        assert_eq!(off_a, 0);
        assert_eq!(off_b, a.len() as u64);
        assert_eq!(log.records(), 2);
        assert_eq!(log.appended_bytes(), (a.len() + b.len()) as u64);

        let mut buf = Vec::new();
        // Reads in arbitrary order, interleaved with another append.
        log.read(off_b, len_b, &mut buf).unwrap();
        assert_eq!(buf, b);
        let (off_c, len_c) = log.append(&a).unwrap();
        log.read(off_a, len_a, &mut buf).unwrap();
        assert_eq!(buf, a);
        log.read(off_c, len_c, &mut buf).unwrap();
        assert_eq!(buf, a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_read_is_an_error() {
        let path = temp_log("short");
        let mut log = SpillLog::create(&path).unwrap();
        let (off, _) = log.append(&[1, 2, 3]).unwrap();
        let mut buf = Vec::new();
        assert!(log.read(off, 10, &mut buf).is_err());
        std::fs::remove_file(&path).ok();
    }
}
