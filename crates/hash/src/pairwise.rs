//! Pairwise-independent (and k-wise independent) hash families over
//! `GF(2^61 − 1)`.
//!
//! The affine family `h_{a,b}(x) = (a·x + b) mod p` with `a` uniform in
//! `[1, p)` and `b` uniform in `[0, p)` is *strongly 2-universal*: for any
//! distinct `x ≠ y` and any targets `u, v`,
//! `Pr[h(x) = u ∧ h(y) = v] = 1 / (p(p−1)) ≈ 1/p²`.
//! This is exactly the assumption under which the Gibbons–Tirthapura
//! analysis bounds the variance of per-level sample counts; no stronger
//! independence is needed for the `(ε, δ)` guarantee.
//!
//! The degree-`k` polynomial family `h(x) = Σ cᵢ xⁱ mod p` (`c_{k-1} ≠ 0`)
//! is `k`-wise independent and is used by the E11 ablation to check whether
//! extra independence buys measurable accuracy (it should not, per the
//! paper's analysis).

use crate::field61::{mul_add61, reduce64, P61};
use crate::lanes::{affine61_lanes, horner61_lanes, LANES};
use crate::seeds::SeedRng;

/// The strongly 2-universal affine family `x ↦ (a·x + b) mod p`.
///
/// ```
/// use gt_hash::{Pairwise61, SeedRng};
/// let h = Pairwise61::random(&mut SeedRng::from_seed(7));
/// // Same seed on another machine: bit-identical function.
/// let h2 = Pairwise61::random(&mut SeedRng::from_seed(7));
/// assert_eq!(h.eval(12345), h2.eval(12345));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Pairwise61 {
    a: u64,
    b: u64,
}

impl Pairwise61 {
    /// Draw a function uniformly from the family using the given seed RNG.
    pub fn random(rng: &mut SeedRng) -> Self {
        // a uniform in [1, p), b uniform in [0, p).
        let a = rng.below(P61 - 1) + 1;
        let b = rng.below(P61);
        Pairwise61 { a, b }
    }

    /// Construct from explicit coefficients (reduced mod p; `a` forced ≠ 0).
    ///
    /// Used by tests and by deserialization paths that already validated
    /// their inputs.
    pub fn from_coefficients(a: u64, b: u64) -> Self {
        let mut a = reduce64(a);
        if a == 0 {
            a = 1;
        }
        Pairwise61 { a, b: reduce64(b) }
    }

    /// The multiplier `a`.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The offset `b`.
    pub fn b(&self) -> u64 {
        self.b
    }

    /// Evaluate the hash. Input must lie in `[0, p)`; callers with raw
    /// labels outside the field should fold first (`gt_hash::fold61`).
    #[inline(always)]
    pub fn eval(&self, x: u64) -> u64 {
        debug_assert!(x < P61, "label outside the [0, 2^61-1) universe");
        mul_add61(self.a, x, self.b)
    }

    /// Evaluate the hash over a slice, writing `h(labels[i])` to `out[i]`.
    ///
    /// The bulk primitive behind `HashFamily::hash_slice_into`: labels are
    /// processed in [`LANES`]-wide blocks through the branch-free lane
    /// kernel ([`affine61_lanes`]), with the field coefficients held in
    /// registers for the whole slice and no data-dependent branches in
    /// the modular reduction. Bitwise-identical to
    /// [`Pairwise61::eval_into_scalar`] (property-tested).
    pub fn eval_into(&self, labels: &[u64], out: &mut [u64]) {
        let (blocks, tail) = labels.as_chunks::<LANES>();
        let (oblocks, otail) = out.as_chunks_mut::<LANES>();
        for (ob, xs) in oblocks.iter_mut().zip(blocks) {
            *ob = affine61_lanes(self.a, xs, self.b);
        }
        self.eval_into_scalar(tail, otail);
    }

    /// The per-element bulk loop the lane kernel replaced — always
    /// compiled, reachable through
    /// [`crate::HashFamily::hash_slice_into_scalar`], and the equivalence
    /// oracle for [`Pairwise61::eval_into`].
    pub fn eval_into_scalar(&self, labels: &[u64], out: &mut [u64]) {
        let h = *self;
        for (o, &x) in out.iter_mut().zip(labels) {
            *o = h.eval(x);
        }
    }
}

/// A degree-`k` polynomial hash over `GF(2^61 − 1)`: `k`-wise independent.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Polynomial61 {
    /// Coefficients `c₀ … c_{k−1}`, evaluated by Horner's rule; the leading
    /// coefficient is kept non-zero so the polynomial has true degree k−1.
    coeffs: Vec<u64>,
}

impl Polynomial61 {
    /// Draw a uniformly random polynomial of independence `k ≥ 2`.
    pub fn random(k: usize, rng: &mut SeedRng) -> Self {
        assert!(k >= 2, "independence must be at least 2");
        let mut coeffs: Vec<u64> = (0..k).map(|_| rng.below(P61)).collect();
        let last = coeffs.last_mut().expect("k >= 2");
        *last = rng.below(P61 - 1) + 1; // leading coefficient ≠ 0
        Polynomial61 { coeffs }
    }

    /// The independence degree `k` of this function.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluate by Horner's rule: `(((c_{k-1}·x + c_{k-2})·x + …)·x + c₀)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        debug_assert!(x < P61, "label outside the [0, 2^61-1) universe");
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = mul_add61(acc, x, c);
        }
        acc
    }

    /// Evaluate the polynomial over a slice, writing `h(labels[i])` to
    /// `out[i]` (the bulk primitive behind `HashFamily::hash_slice_into`).
    ///
    /// Runs Horner's rule over [`LANES`]-wide blocks: one lane of
    /// independent accumulators advances through the shared coefficient
    /// sequence ([`horner61_lanes`]), so the `k` dependent multiplies per
    /// label overlap across lanes instead of serializing.
    /// Bitwise-identical to [`Polynomial61::eval_into_scalar`].
    pub fn eval_into(&self, labels: &[u64], out: &mut [u64]) {
        let (blocks, tail) = labels.as_chunks::<LANES>();
        let (oblocks, otail) = out.as_chunks_mut::<LANES>();
        for (ob, xs) in oblocks.iter_mut().zip(blocks) {
            let mut acc = [0u64; LANES];
            for &c in self.coeffs.iter().rev() {
                acc = horner61_lanes(&acc, xs, c);
            }
            *ob = acc;
        }
        self.eval_into_scalar(tail, otail);
    }

    /// The per-element bulk loop the lane kernel replaced — always
    /// compiled, the equivalence oracle for [`Polynomial61::eval_into`].
    pub fn eval_into_scalar(&self, labels: &[u64], out: &mut [u64]) {
        for (o, &x) in out.iter_mut().zip(labels) {
            *o = self.eval(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::SeedRng;

    fn rng(seed: u64) -> SeedRng {
        SeedRng::from_seed(seed)
    }

    #[test]
    fn affine_eval_matches_definition() {
        let h = Pairwise61::from_coefficients(3, 7);
        assert_eq!(h.eval(10), 37);
        assert_eq!(h.eval(0), 7);
        // Wraparound case: a·x + b just below/above p.
        let h2 = Pairwise61::from_coefficients(1, P61 - 1);
        assert_eq!(h2.eval(1), 0); // (1 + p-1) mod p
        assert_eq!(h2.eval(2), 1);
    }

    #[test]
    fn zero_multiplier_is_rejected() {
        let h = Pairwise61::from_coefficients(0, 5);
        assert_eq!(h.a(), 1);
    }

    #[test]
    fn affine_coefficients_reduced() {
        let h = Pairwise61::from_coefficients(u64::MAX, u64::MAX);
        assert!(h.a() < P61 && h.b() < P61);
    }

    #[test]
    fn random_draws_are_deterministic_per_seed() {
        let h1 = Pairwise61::random(&mut rng(42));
        let h2 = Pairwise61::random(&mut rng(42));
        let h3 = Pairwise61::random(&mut rng(43));
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn affine_is_injective_on_the_field() {
        // a ≠ 0 ⇒ x ↦ ax+b is a bijection of GF(p); spot check many inputs.
        let h = Pairwise61::random(&mut rng(7));
        let mut seen = std::collections::HashSet::new();
        for x in 0u64..50_000 {
            assert!(seen.insert(h.eval(x)));
        }
    }

    #[test]
    fn pairwise_collision_rate_is_near_ideal() {
        // Over random functions, Pr[h(x)=h(y) mod 2^16] ≈ 2^-16 per pair.
        let mut collisions = 0u64;
        let trials = 400u64;
        let pairs_per_trial = 1000u64;
        for t in 0..trials {
            let h = Pairwise61::random(&mut rng(1000 + t));
            for i in 0..pairs_per_trial {
                let (x, y) = (2 * i, 2 * i + 1);
                if h.eval(x) & 0xFFFF == h.eval(y) & 0xFFFF {
                    collisions += 1;
                }
            }
        }
        let total_pairs = (trials * pairs_per_trial) as f64;
        let rate = collisions as f64 / total_pairs;
        let ideal = 1.0 / 65536.0;
        assert!(rate < 6.0 * ideal, "collision rate {rate} vs ideal {ideal}");
    }

    #[test]
    fn polynomial_degree_two_matches_affine_shape() {
        let p = Polynomial61 { coeffs: vec![7, 3] }; // c0 + c1 x = 3x + 7
        let h = Pairwise61::from_coefficients(3, 7);
        for x in [0u64, 1, 99, P61 - 1] {
            assert_eq!(p.eval(x), h.eval(x));
        }
    }

    #[test]
    fn polynomial_horner_matches_naive() {
        let poly = Polynomial61::random(5, &mut rng(9));
        for x in [0u64, 1, 12345, P61 - 2] {
            let mut expect = 0u64;
            let mut xp = 1u64;
            for &c in &poly.coeffs {
                expect = crate::field61::add61(expect, crate::field61::mul61(c, xp));
                xp = crate::field61::mul61(xp, x);
            }
            assert_eq!(poly.eval(x), expect, "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "independence must be at least 2")]
    fn polynomial_rejects_k_below_two() {
        Polynomial61::random(1, &mut rng(1));
    }

    #[test]
    fn polynomial_leading_coefficient_nonzero() {
        for s in 0..50 {
            let p = Polynomial61::random(4, &mut rng(s));
            assert_ne!(*p.coeffs.last().unwrap(), 0);
        }
    }
}
