//! Simple tabulation hashing.
//!
//! Split the 64-bit label into 8 bytes and XOR together one random table
//! entry per byte: `h(x) = T₀[x₀] ⊕ … ⊕ T₇[x₇]`. Simple tabulation is
//! 3-independent, and Pătraşcu–Thorup showed it behaves like full
//! randomness for many sketching applications (including F₀-style
//! estimators) despite its limited formal independence. It trades 2 KiB of
//! tables per function for extremely cheap evaluation (8 loads + XORs), and
//! serves as the "practitioner's choice" arm of the E11 ablation.

use crate::seeds::SeedRng;

/// Number of byte positions in a 64-bit label.
const CHUNKS: usize = 8;
/// Entries per table (one per byte value).
const TABLE: usize = 256;

/// A simple tabulation hash function (8 × 256 random 61-bit entries).
#[derive(Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Tabulation {
    /// Flattened `CHUNKS × TABLE` entry matrix, each entry `< 2^61`.
    tables: Vec<u64>,
}

impl std::fmt::Debug for Tabulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tabulation {{ fingerprint: {:#x} }}",
            self.tables.iter().fold(0u64, |a, &t| a ^ t)
        )
    }
}

impl Tabulation {
    /// Fill all tables from the seed RNG.
    pub fn random(rng: &mut SeedRng) -> Self {
        let mask = (1u64 << 61) - 1;
        let tables = (0..CHUNKS * TABLE).map(|_| rng.next_u64() & mask).collect();
        Tabulation { tables }
    }

    /// Evaluate; returns a value in `[0, 2^61)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let b = x.to_le_bytes();
        let mut acc = 0u64;
        // The bounds are statically satisfiable (i*256 + byte < 8*256); the
        // indexing form below lets LLVM elide the checks.
        for (i, &byte) in b.iter().enumerate() {
            acc ^= self.tables[i * TABLE + byte as usize];
        }
        acc
    }

    /// Evaluate the hash over a slice, writing `h(labels[i])` to `out[i]`
    /// (the bulk primitive behind `HashFamily::hash_slice_into`; keeps the
    /// lookup tables hot in cache across the whole slice).
    ///
    /// Deliberately **not** lane-blocked: tabulation is bound by its table
    /// *loads*, which are data-dependent gathers no pre-AVX-512 target can
    /// vectorize. A `LANES`-wide block form was measured ~25% *slower*
    /// than this loop (E20) — the block accumulators add register
    /// pressure while the loads stay serial — so the bulk path is the
    /// per-element loop, and out-of-order execution across neighbouring
    /// items supplies the memory-level parallelism. Kept as a distinct
    /// entry point from [`Tabulation::eval_into_scalar`] so the
    /// family-wide equivalence proof covers it uniformly.
    pub fn eval_into(&self, labels: &[u64], out: &mut [u64]) {
        self.eval_into_scalar(labels, out);
    }

    /// The per-element bulk loop the lane kernel replaced — always
    /// compiled, the equivalence oracle for [`Tabulation::eval_into`].
    pub fn eval_into_scalar(&self, labels: &[u64], out: &mut [u64]) {
        for (o, &x) in out.iter_mut().zip(labels) {
            *o = self.eval(x);
        }
    }

    /// Size of the table material in bytes (for space accounting).
    pub fn table_bytes(&self) -> usize {
        self.tables.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::SeedRng;

    #[test]
    fn output_fits_61_bits() {
        let h = Tabulation::random(&mut SeedRng::from_seed(3));
        for x in [0u64, u64::MAX, 0x0102_0304_0506_0708] {
            assert!(h.eval(x) < (1 << 61));
        }
    }

    #[test]
    fn eval_is_xor_of_byte_tables() {
        let h = Tabulation::random(&mut SeedRng::from_seed(4));
        let x = 0x0102_0304_0506_0708u64;
        let mut expect = 0u64;
        for (i, &byte) in x.to_le_bytes().iter().enumerate() {
            expect ^= h.tables[i * 256 + byte as usize];
        }
        assert_eq!(h.eval(x), expect);
    }

    #[test]
    fn zero_label_hashes_to_xor_of_zero_entries() {
        let h = Tabulation::random(&mut SeedRng::from_seed(5));
        let mut expect = 0u64;
        for i in 0..8 {
            expect ^= h.tables[i * 256];
        }
        assert_eq!(h.eval(0), expect);
    }

    #[test]
    fn table_size_is_16kib() {
        let h = Tabulation::random(&mut SeedRng::from_seed(6));
        assert_eq!(h.table_bytes(), 8 * 256 * 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Tabulation::random(&mut SeedRng::from_seed(9));
        let b = Tabulation::random(&mut SeedRng::from_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn single_byte_change_changes_hash() {
        let h = Tabulation::random(&mut SeedRng::from_seed(11));
        // Flipping one byte XORs in T_i[old] ^ T_i[new] which is nonzero
        // w.h.p. — check a spread of positions.
        for shift in (0..64).step_by(8) {
            let x = 0u64;
            let y = 1u64 << shift;
            assert_ne!(h.eval(x), h.eval(y), "shift {shift}");
        }
    }
}
