//! The geometric *level* map at the heart of coordinated sampling, and the
//! devirtualized [`HashFamily`] dispatcher used on sketch hot paths.
//!
//! An item `x` is assigned `lvl(x) =` number of trailing zero bits of
//! `h(x)`, so `Pr[lvl(x) ≥ l] = 2^{-l}` (up to an additive `2^l/p` from the
//! field not being an exact power of two — negligible for every level a
//! sketch can reach; quantified in [`level_probability`]). Crucially the
//! level of a label is a pure function of `(seed, label)`: every party that
//! shares the seed assigns every label the same level, which is what makes
//! locally-collected samples union-compatible.

use crate::multiply_shift::MultiplyShift;
use crate::pairwise::{Pairwise61, Polynomial61};
use crate::sabotage::Sabotaged;
use crate::seeds::{FamilySeed, SeedRng};
use crate::tabulation::Tabulation;

/// Maximum level a label can be assigned. Hash outputs live in `[0, 2^61)`;
/// a value of zero (or with ≥ 60 trailing zeros) is capped here.
pub const MAX_LEVEL: u8 = 60;

/// The sampling level of a raw hash value: its trailing zeros, capped at
/// [`MAX_LEVEL`] (a hash of zero counts as all-zeros and lands on the cap).
///
/// Split out from [`LevelHasher::level`] so batch kernels that hold raw
/// hashes (from [`HashFamily::hash_slice_into`]) can derive levels without
/// re-hashing.
#[inline]
pub fn level_of_hash(h: u64) -> u8 {
    if h == 0 {
        MAX_LEVEL
    } else {
        (h.trailing_zeros() as u8).min(MAX_LEVEL)
    }
}

/// Bit mask characterizing survival at a sampling level: a raw hash `h`
/// qualifies for level `l` (i.e. `level_of_hash(h) ≥ l`) iff
/// `h & survival_mask(l) == 0`.
///
/// This turns the dominant below-level rejection on the ingest hot path
/// into a single AND+compare against a cached mask — no `trailing_zeros`,
/// no branch on `h == 0` (zero passes every mask, matching its
/// [`MAX_LEVEL`] assignment), and no sample-table probe.
#[inline]
pub fn survival_mask(level: u8) -> u64 {
    debug_assert!(level <= MAX_LEVEL, "level {level} exceeds {MAX_LEVEL}");
    (1u64 << level) - 1
}

/// Survivor bitmap of up to 64 raw hashes against a survival mask: bit
/// `i` of the result is set iff `hashes[i] & mask == 0`, i.e. iff
/// `hashes[i]` qualifies for the level that produced `mask` (see
/// [`survival_mask`]).
///
/// This is the lane-wide below-level screen of the batch kernels: one
/// branch-free compare per hash builds the bitmap (a shape the
/// auto-vectorizer lowers to vector compares where available), the
/// non-survivor count falls out of one `count_ones`, and only set bits —
/// vanishingly few once a sketch's level has grown — take the per-item
/// insertion path. Callers that may promote the level mid-window re-check
/// each survivor against the *current* mask before inserting; because
/// `survival_mask` grows monotonically with the level, a hash screened
/// out here can never qualify later, so the early rejection is exact.
///
/// # Panics
/// Debug-asserts `hashes.len() <= 64` (one bitmap word).
#[inline]
pub fn survival_screen(hashes: &[u64], mask: u64) -> u64 {
    debug_assert!(hashes.len() <= 64, "screen window exceeds one bitmap word");
    // The batch kernels feed full 64-hash windows except at a chunk's very
    // end, so the full window gets a dedicated two-phase shape: phase 1
    // stores 64 independent 0/1 bytes (statically sized, so the
    // auto-vectorizer lowers it to vector compares and the flag buffer's
    // zero-init is elided as fully overwritten); phase 2 packs each
    // 8-byte group into 8 bits with the multiply-movemask trick — for 0/1
    // bytes every partial product lands on a distinct bit position, so
    // the top byte of the wrapping product is exactly
    // `b₀ | b₁<<1 | … | b₇<<7`, carry-free. The obvious single loop
    // (`bits |= flag << i`) carries a serial dependency on `bits` that
    // defeats both vectorization and instruction-level parallelism
    // (measured ~2.5× slower); it remains the tail path, where windows
    // are short.
    if let Ok(full) = <&[u64; 64]>::try_from(hashes) {
        let mut flags = [0u8; 64];
        for i in 0..64 {
            flags[i] = u8::from(full[i] & mask == 0);
        }
        let mut bits = 0u64;
        for j in 0..8 {
            let w = u64::from_le_bytes(flags[j * 8..][..8].try_into().expect("group of 8"));
            bits |= (w.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * j);
        }
        return bits;
    }
    let mut bits = 0u64;
    for (i, &h) in hashes.iter().enumerate() {
        bits |= u64::from(h & mask == 0) << i;
    }
    bits
}

/// Anything that can hash a label and assign it a sampling level.
pub trait LevelHasher {
    /// Hash a label from `[0, 2^61 − 1)` into `[0, 2^61)`.
    fn hash_label(&self, x: u64) -> u64;

    /// The sampling level of a label: trailing zeros of its hash, capped at
    /// [`MAX_LEVEL`]. `Pr[level(x) ≥ l] = 2^{-l}` for a sound family.
    #[inline]
    fn level(&self, x: u64) -> u8 {
        level_of_hash(self.hash_label(x))
    }
}

/// Which hash family to draw from — the sketch-level configuration knob.
///
/// [`HashFamilyKind::Pairwise`] is the paper's choice and the default
/// everywhere; the others exist for the E11 ablation and for users who want
/// to trade guarantees for speed knowingly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HashFamilyKind {
    /// Strongly 2-universal affine hash over `GF(2^61 − 1)` (the paper's
    /// assumption; the default).
    Pairwise,
    /// Degree-`k` polynomial (k-wise independent), `k ≥ 2`.
    KWise(u8),
    /// Dietzfelbinger multiply–shift (universal, not pairwise-uniform).
    MultiplyShift,
    /// Simple tabulation (3-independent, excellent empirical behaviour).
    Tabulation,
    /// Ablation: levels biased upward by `k` bits.
    SabotagedShift(u8),
    /// Ablation: 4 bits of seed entropy.
    SabotagedLowEntropy,
    /// Ablation: identity "hash".
    SabotagedIdentity,
}

impl HashFamilyKind {
    /// Instantiate a concrete function of this family from a seed.
    ///
    /// Equal `(kind, seed)` pairs always produce identical functions — the
    /// coordination contract.
    pub fn build(self, seed: FamilySeed) -> HashFamily {
        let mut rng = SeedRng::from_seed(seed.0);
        match self {
            HashFamilyKind::Pairwise => HashFamily::Pairwise(Pairwise61::random(&mut rng)),
            HashFamilyKind::KWise(k) => {
                HashFamily::Polynomial(Polynomial61::random(k as usize, &mut rng))
            }
            HashFamilyKind::MultiplyShift => {
                HashFamily::MultiplyShift(MultiplyShift::random(&mut rng))
            }
            HashFamilyKind::Tabulation => HashFamily::Tabulation(Tabulation::random(&mut rng)),
            HashFamilyKind::SabotagedShift(k) => {
                HashFamily::Sabotaged(Sabotaged::shifted(k, &mut rng))
            }
            HashFamilyKind::SabotagedLowEntropy => {
                HashFamily::Sabotaged(Sabotaged::low_entropy(&mut rng))
            }
            HashFamilyKind::SabotagedIdentity => HashFamily::Sabotaged(Sabotaged::Identity),
        }
    }
}

/// A concrete hash function, enum-dispatched so the per-item hot path
/// compiles to a jump table rather than a virtual call (and so sketches
/// remain `Clone + Send + Serialize` without boxing).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum HashFamily {
    /// Affine over `GF(2^61−1)`.
    Pairwise(Pairwise61),
    /// Degree-k polynomial over `GF(2^61−1)`.
    Polynomial(Polynomial61),
    /// Multiply–shift.
    MultiplyShift(MultiplyShift),
    /// Simple tabulation.
    Tabulation(Tabulation),
    /// One of the deliberately broken ablation hashes.
    Sabotaged(Sabotaged),
}

impl HashFamily {
    /// Hash a slice of labels, writing `h(labels[i])` to `out[i]`.
    ///
    /// The batch-monomorphic ingest primitive: the family enum is
    /// dispatched **once per call**, and each arm runs the concrete
    /// hasher's own bulk loop ([`Pairwise61::eval_into`] and friends) —
    /// a tight monomorphic loop the compiler can keep in registers and
    /// vectorize, instead of a jump-table indirection per item.
    ///
    /// # Panics
    /// Panics if `labels` and `out` differ in length.
    pub fn hash_slice_into(&self, labels: &[u64], out: &mut [u64]) {
        assert_eq!(
            labels.len(),
            out.len(),
            "hash_slice_into needs equal-length label and output slices"
        );
        match self {
            HashFamily::Pairwise(h) => h.eval_into(labels, out),
            HashFamily::Polynomial(h) => h.eval_into(labels, out),
            HashFamily::MultiplyShift(h) => h.eval_into(labels, out),
            HashFamily::Tabulation(h) => h.eval_into(labels, out),
            HashFamily::Sabotaged(h) => h.eval_into(labels, out),
        }
    }

    /// Scalar counterpart of [`HashFamily::hash_slice_into`]: the same
    /// once-per-call enum dispatch, but each arm runs the family's
    /// original per-element loop instead of the lane kernel. Always
    /// compiled — it is the equivalence oracle the differential tests
    /// compare the lane path against (bitwise, every family), the `scalar`
    /// contender in the kernel microbench (experiment `e20`), and the
    /// reference implementation should a target miscompile the lane shape.
    ///
    /// # Panics
    /// Panics if `labels` and `out` differ in length.
    pub fn hash_slice_into_scalar(&self, labels: &[u64], out: &mut [u64]) {
        assert_eq!(
            labels.len(),
            out.len(),
            "hash_slice_into_scalar needs equal-length label and output slices"
        );
        match self {
            HashFamily::Pairwise(h) => h.eval_into_scalar(labels, out),
            HashFamily::Polynomial(h) => h.eval_into_scalar(labels, out),
            HashFamily::MultiplyShift(h) => h.eval_into_scalar(labels, out),
            HashFamily::Tabulation(h) => h.eval_into_scalar(labels, out),
            HashFamily::Sabotaged(h) => h.eval_into_scalar(labels, out),
        }
    }
}

impl LevelHasher for HashFamily {
    #[inline]
    fn hash_label(&self, x: u64) -> u64 {
        match self {
            HashFamily::Pairwise(h) => h.eval(x),
            HashFamily::Polynomial(h) => h.eval(x),
            HashFamily::MultiplyShift(h) => h.eval(x),
            HashFamily::Tabulation(h) => h.eval(x),
            HashFamily::Sabotaged(h) => h.eval(x),
        }
    }
}

/// Exact probability that a uniform draw from `[0, p)`, `p = 2^61 − 1`, has
/// at least `l` trailing zeros — i.e. the true sampling probability the
/// affine family realizes at level `l`, for comparison against the ideal
/// `2^{-l}` in calibration tests.
pub fn level_probability(l: u8) -> f64 {
    use crate::field61::P61;
    if l == 0 {
        return 1.0;
    }
    if l > 61 {
        return 0.0;
    }
    // Multiples of 2^l in [0, p): floor((p - 1) / 2^l) + 1.
    let count = ((P61 - 1) >> l) + 1;
    count as f64 / P61 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(n: u64) -> FamilySeed {
        FamilySeed(n)
    }

    #[test]
    fn build_is_deterministic() {
        for kind in [
            HashFamilyKind::Pairwise,
            HashFamilyKind::KWise(4),
            HashFamilyKind::MultiplyShift,
            HashFamilyKind::Tabulation,
        ] {
            let a = kind.build(seed(5));
            let b = kind.build(seed(5));
            for x in [0u64, 1, 99999] {
                assert_eq!(a.hash_label(x), b.hash_label(x), "{kind:?}");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = HashFamilyKind::Pairwise.build(seed(1));
        let b = HashFamilyKind::Pairwise.build(seed(2));
        let diffs = (0..100u64)
            .filter(|&x| a.hash_label(x) != b.hash_label(x))
            .count();
        assert!(diffs > 90);
    }

    #[test]
    fn level_of_zero_hash_is_max() {
        // Identity hash: label 0 hashes to 0 → MAX_LEVEL.
        let h = HashFamilyKind::SabotagedIdentity.build(seed(0));
        assert_eq!(h.level(0), MAX_LEVEL);
    }

    #[test]
    fn level_matches_trailing_zeros() {
        let h = HashFamilyKind::SabotagedIdentity.build(seed(0));
        assert_eq!(h.level(1), 0);
        assert_eq!(h.level(8), 3);
        assert_eq!(h.level(96), 5);
        assert_eq!(h.level(1 << 45), 45);
    }

    #[test]
    fn level_is_capped() {
        let h = HashFamilyKind::SabotagedIdentity.build(seed(0));
        // 2^60 < p, has 60 trailing zeros.
        assert_eq!(h.level(1 << 60), MAX_LEVEL);
    }

    #[test]
    fn level_distribution_is_geometric() {
        // Over 2^16 random labels, the count at level ≥ l should be close
        // to n·2^-l for the sound families.
        for kind in [HashFamilyKind::Pairwise, HashFamilyKind::Tabulation] {
            let h = kind.build(seed(1234));
            let n = 1u64 << 16;
            let mut counts = [0u64; 12];
            for i in 0..n {
                let x = crate::mix::fold61(i);
                let l = h.level(x).min(11);
                for bucket in counts.iter_mut().take(l as usize + 1) {
                    *bucket += 1;
                }
            }
            for (l, &c) in counts.iter().enumerate().take(9) {
                let expect = (n >> l) as f64;
                let sd = expect.sqrt();
                assert!(
                    (c as f64 - expect).abs() < 6.0 * sd + 1.0,
                    "{kind:?} level {l}: got {c}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn sabotaged_shift_inflates_levels() {
        let good = HashFamilyKind::Pairwise.build(seed(7));
        let bad = HashFamilyKind::SabotagedShift(3).build(seed(7));
        let n = 1u64 << 14;
        let count_ge = |h: &HashFamily, l: u8| {
            (0..n)
                .filter(|&x| h.level(crate::mix::fold61(x)) >= l)
                .count()
        };
        // At level 6, the shifted hash samples ~2^3 times more items.
        let g = count_ge(&good, 6) as f64;
        let b = count_ge(&bad, 6) as f64;
        assert!(b > 4.0 * g, "good {g}, shifted {b}");
    }

    #[test]
    fn hash_slice_into_matches_per_item_eval_for_every_family() {
        let labels: Vec<u64> = (0..1_000u64).map(crate::mix::fold61).collect();
        for kind in [
            HashFamilyKind::Pairwise,
            HashFamilyKind::KWise(4),
            HashFamilyKind::MultiplyShift,
            HashFamilyKind::Tabulation,
            HashFamilyKind::SabotagedShift(3),
            HashFamilyKind::SabotagedLowEntropy,
            HashFamilyKind::SabotagedIdentity,
        ] {
            let h = kind.build(seed(9));
            let mut out = vec![0u64; labels.len()];
            h.hash_slice_into(&labels, &mut out);
            for (&x, &got) in labels.iter().zip(out.iter()) {
                assert_eq!(got, h.hash_label(x), "{kind:?} label {x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn hash_slice_into_rejects_length_mismatch() {
        let h = HashFamilyKind::Pairwise.build(seed(1));
        let mut out = [0u64; 2];
        h.hash_slice_into(&[1, 2, 3], &mut out);
    }

    #[test]
    fn survival_mask_agrees_with_level_of_hash() {
        // The mask compare must classify exactly like the level compare,
        // for every level a trial can reach and adversarial hash shapes.
        let hashes = [
            0u64,
            1,
            2,
            8,
            96,
            1 << 45,
            1 << 60,
            (1 << 61) - 2,
            0xDEAD_BEEF_0000,
        ];
        for level in 0..=MAX_LEVEL {
            let mask = survival_mask(level);
            for &h in &hashes {
                assert_eq!(
                    h & mask == 0,
                    level_of_hash(h) >= level,
                    "hash {h:#x} at level {level}"
                );
            }
        }
    }

    #[test]
    fn level_probability_close_to_ideal() {
        for l in 0..=40u8 {
            let p = level_probability(l);
            let ideal = 2f64.powi(-(l as i32));
            assert!((p - ideal).abs() / ideal < 1e-6, "level {l}");
        }
        assert_eq!(level_probability(62), 0.0);
    }
}
