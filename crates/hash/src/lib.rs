//! # gt-hash — hashing substrate for coordinated sampling
//!
//! The Gibbons–Tirthapura sketch requires a hash family with *provable*
//! pairwise independence: the analysis of the level assignment (an item is
//! sampled at level `l` with probability `2^-l`) and of the variance of the
//! resulting estimator both rely on `Pr[h(x)=u ∧ h(y)=v] = 1/R²` for any two
//! distinct labels `x ≠ y`. This crate provides:
//!
//! * [`field61`] — fast arithmetic over the Mersenne prime `p = 2^61 − 1`,
//!   the standard field for pairwise-independent hashing of 64-bit labels.
//! * [`pairwise`] — the affine family `h(x) = (a·x + b) mod p` (strongly
//!   2-universal) and the degree-`k` polynomial family (k-wise independent).
//! * [`multiply_shift`] — Dietzfelbinger's multiply–shift family: 2-universal
//!   (not pairwise uniform) but ~3× faster; included for the E11 ablation.
//! * [`tabulation`] — simple tabulation hashing (3-independent, and known to
//!   behave like full randomness for many sketching applications).
//! * [`lanes`] — lane-oriented (SIMD-shaped) kernels behind every bulk
//!   `eval_into` path: portable fixed-width blocks with a compile-time
//!   AVX2 widening, no `unsafe`, scalar fallbacks always compiled and
//!   proven bitwise-identical.
//! * [`level`] — the geometric level map `lvl(x) = trailing_zeros(h(x))`
//!   that drives coordinated sampling, behind the [`LevelHasher`] trait and
//!   the devirtualized [`HashFamily`] enum used on hot paths.
//! * [`sabotage`] — deliberately broken hashes used by the ablation
//!   experiment (E11) to demonstrate *why* pairwise independence matters.
//! * [`quality`] — statistical test harness (collision rate, bit bias,
//!   level-distribution calibration, chi-square) shared by unit tests and
//!   the ablation experiment.
//! * [`seeds`] — serializable seed material so that independent parties can
//!   construct *identical* hash functions, the heart of coordination.
//! * [`mix`] — a fixed 64-bit finalizer for folding arbitrary labels into
//!   the `[0, 2^61 − 1)` universe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field61;
pub mod lanes;
pub mod level;
pub mod mix;
pub mod multiply_shift;
pub mod pairwise;
pub mod quality;
pub mod sabotage;
pub mod seeds;
pub mod tabulation;

pub use field61::{Field61, P61};
pub use lanes::LANES;
pub use level::{
    level_of_hash, survival_mask, survival_screen, HashFamily, HashFamilyKind, LevelHasher,
    MAX_LEVEL,
};
pub use mix::{fold61, mix64};
pub use multiply_shift::MultiplyShift;
pub use pairwise::{Pairwise61, Polynomial61};
pub use sabotage::Sabotaged;
pub use seeds::{FamilySeed, SeedRng, SeedSequence};
pub use tabulation::Tabulation;
