//! Statistical quality harness for hash families.
//!
//! Shared by the crate's own unit tests and by the E11 ablation experiment,
//! which prints these metrics side by side for every family (sound and
//! sabotaged). All routines are deterministic given their inputs: label
//! sets are supplied by the caller, so experiments can probe both random
//! and adversarially structured universes.

use crate::level::{LevelHasher, MAX_LEVEL};

/// Result of a level-calibration measurement: for each level `l`, how far
/// the observed fraction of labels with `lvl ≥ l` deviates from `2^{-l}`.
#[derive(Clone, Debug)]
pub struct LevelCalibration {
    /// `observed[l]` = fraction of labels with level ≥ l.
    pub observed: Vec<f64>,
    /// `relative_error[l]` = |observed − 2^{-l}| / 2^{-l}.
    pub relative_error: Vec<f64>,
    /// Worst relative error over the measured levels.
    pub max_relative_error: f64,
}

/// Measure how well a hasher's level distribution matches the geometric
/// ideal, over levels `0..=max_level`, on the given label set.
pub fn level_calibration<H: LevelHasher>(
    hasher: &H,
    labels: impl IntoIterator<Item = u64>,
    max_level: u8,
) -> LevelCalibration {
    let max_level = max_level.min(MAX_LEVEL);
    let mut ge_counts = vec![0u64; max_level as usize + 1];
    let mut n = 0u64;
    for x in labels {
        n += 1;
        let l = hasher.level(x).min(max_level);
        for c in ge_counts.iter_mut().take(l as usize + 1) {
            *c += 1;
        }
    }
    assert!(n > 0, "label set must be non-empty");
    let mut observed = Vec::with_capacity(ge_counts.len());
    let mut relative_error = Vec::with_capacity(ge_counts.len());
    let mut max_rel = 0f64;
    for (l, &c) in ge_counts.iter().enumerate() {
        let obs = c as f64 / n as f64;
        let ideal = 2f64.powi(-(l as i32));
        let rel = (obs - ideal).abs() / ideal;
        observed.push(obs);
        relative_error.push(rel);
        max_rel = max_rel.max(rel);
    }
    LevelCalibration {
        observed,
        relative_error,
        max_relative_error: max_rel,
    }
}

/// Fraction of label pairs `(2i, 2i+1)` whose hashes collide in their low
/// `bits` bits, averaged over nothing (single function) — compare against
/// the ideal `2^{-bits}`.
pub fn collision_rate<H: LevelHasher>(hasher: &H, pairs: u64, bits: u32) -> f64 {
    assert!(bits > 0 && bits <= 61);
    let mask = (1u64 << bits) - 1;
    let mut collisions = 0u64;
    for i in 0..pairs {
        if hasher.hash_label(2 * i) & mask == hasher.hash_label(2 * i + 1) & mask {
            collisions += 1;
        }
    }
    collisions as f64 / pairs as f64
}

/// Per-bit bias of the hash output over a label set: for each of the low 61
/// output bits, `|P(bit = 1) − 1/2|`. Returns the maximum over bits.
pub fn max_bit_bias<H: LevelHasher>(hasher: &H, labels: impl IntoIterator<Item = u64>) -> f64 {
    let mut ones = [0u64; 61];
    let mut n = 0u64;
    for x in labels {
        n += 1;
        let h = hasher.hash_label(x);
        for (b, count) in ones.iter_mut().enumerate() {
            *count += (h >> b) & 1;
        }
    }
    assert!(n > 0, "label set must be non-empty");
    ones.iter()
        .map(|&c| (c as f64 / n as f64 - 0.5).abs())
        .fold(0.0, f64::max)
}

/// Pearson chi-square statistic of hash outputs bucketed into `2^bucket_bits`
/// equal cells, over the given labels. For a uniform hash this should be
/// near the number of cells (mean of the chi-square distribution with
/// `cells − 1` degrees of freedom).
pub fn chi_square<H: LevelHasher>(
    hasher: &H,
    labels: impl IntoIterator<Item = u64>,
    bucket_bits: u32,
) -> f64 {
    assert!((1..=16).contains(&bucket_bits));
    let cells = 1usize << bucket_bits;
    let mut counts = vec![0u64; cells];
    let mut n = 0u64;
    for x in labels {
        n += 1;
        // Bucket by the *top* bits of the 61-bit output so the statistic is
        // sensitive to non-uniformity that trailing-zero levels don't see.
        let idx = (hasher.hash_label(x) >> (61 - bucket_bits)) as usize;
        counts[idx.min(cells - 1)] += 1;
    }
    assert!(n > 0, "label set must be non-empty");
    let expect = n as f64 / cells as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum()
}

/// Strict-avalanche metric: flip each of the low `input_bits` input bits
/// on a set of base labels and measure, for every (input bit, output bit)
/// pair, the probability that the output bit flips. Ideal diffusion puts
/// every pair at 0.5; returns the worst deviation `max |p − 0.5|`.
///
/// Affine field hashes fail this criterion structurally: flipping input
/// bit `i` *adds* the constant `a·2^i mod p`, so the lowest output bit
/// flips with probability exactly 0 or 1 (the constant's low bit), a
/// deviation of 0.5. They are nonetheless perfectly sound for level
/// sampling — the ablation prints this metric precisely to show that
/// avalanche is the wrong soundness criterion for this algorithm;
/// pairwise independence is the right one.
pub fn worst_avalanche_bias<H: LevelHasher>(
    hasher: &H,
    bases: impl IntoIterator<Item = u64>,
    input_bits: u32,
) -> f64 {
    assert!((1..=61).contains(&input_bits));
    const OUT_BITS: usize = 61;
    let mut flips = vec![0u64; input_bits as usize * OUT_BITS];
    let mut n = 0u64;
    for base in bases {
        let base = base & ((1u64 << 61) - 2); // keep base + flip inside the field range
        n += 1;
        let h0 = hasher.hash_label(base % crate::field61::P61);
        for bit in 0..input_bits {
            let h1 = hasher.hash_label((base ^ (1u64 << bit)) % crate::field61::P61);
            let mut delta = h0 ^ h1;
            while delta != 0 {
                let out_bit = delta.trailing_zeros() as usize;
                delta &= delta - 1;
                if out_bit < OUT_BITS {
                    flips[bit as usize * OUT_BITS + out_bit] += 1;
                }
            }
        }
    }
    assert!(n > 0, "label set must be non-empty");
    flips
        .iter()
        .map(|&f| (f as f64 / n as f64 - 0.5).abs())
        .fold(0.0, f64::max)
}

/// Convenience: the label set `fold61(0..n)` — structured input made
/// uniform-ish by the fixed mixer, the default universe for quality tests.
pub fn mixed_labels(n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(crate::mix::fold61)
}

/// Convenience: raw sequential labels `0..n` — the adversarial universe for
/// saboteur demonstrations (structure survives into a weak hash).
pub fn sequential_labels(n: u64) -> impl Iterator<Item = u64> {
    0..n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::HashFamilyKind;
    use crate::seeds::FamilySeed;

    fn build(kind: HashFamilyKind, seed: u64) -> crate::level::HashFamily {
        kind.build(FamilySeed(seed))
    }

    #[test]
    fn sound_families_calibrate() {
        for kind in [
            HashFamilyKind::Pairwise,
            HashFamilyKind::KWise(4),
            HashFamilyKind::Tabulation,
        ] {
            let h = build(kind, 21);
            let cal = level_calibration(&h, mixed_labels(1 << 15), 8);
            assert!(
                cal.max_relative_error < 0.15,
                "{kind:?}: {:?}",
                cal.relative_error
            );
        }
    }

    #[test]
    fn shifted_saboteur_fails_calibration() {
        let h = build(HashFamilyKind::SabotagedShift(3), 21);
        let cal = level_calibration(&h, mixed_labels(1 << 14), 8);
        // Levels 1..3 are inflated by up to 8x.
        assert!(cal.max_relative_error > 1.0, "{:?}", cal.relative_error);
    }

    #[test]
    fn identity_fails_on_sequential_but_not_random() {
        let h = build(HashFamilyKind::SabotagedIdentity, 0);
        // Sequential labels 0..n: the level distribution is *exactly*
        // geometric (deterministically), so calibration alone cannot catch
        // it — that is precisely why the ablation also measures per-seed
        // variance. Here we check the chi-square of the top bits instead:
        // sequential inputs occupy one corner of the output space.
        let chi = chi_square(&h, sequential_labels(1 << 14), 8);
        assert!(chi > 10.0 * 256.0, "chi {chi}"); // massively non-uniform
    }

    #[test]
    fn pairwise_chi_square_is_sane() {
        let h = build(HashFamilyKind::Pairwise, 33);
        let chi = chi_square(&h, mixed_labels(1 << 14), 8);
        // df = 255; mean 255, sd ≈ 22.6 — allow a generous band.
        assert!(chi > 150.0 && chi < 400.0, "chi {chi}");
    }

    #[test]
    fn bit_bias_small_for_sound_families() {
        let h = build(HashFamilyKind::Pairwise, 44);
        let bias = max_bit_bias(&h, mixed_labels(1 << 14));
        assert!(bias < 0.03, "bias {bias}");
    }

    #[test]
    fn collision_rate_near_ideal_for_pairwise() {
        let h = build(HashFamilyKind::Pairwise, 55);
        let rate = collision_rate(&h, 1 << 14, 12);
        let ideal = 2f64.powi(-12);
        assert!(rate < 5.0 * ideal + 1e-9, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "label set must be non-empty")]
    fn calibration_rejects_empty_input() {
        let h = build(HashFamilyKind::Pairwise, 1);
        level_calibration(&h, std::iter::empty(), 4);
    }

    #[test]
    fn tabulation_avalanches_but_affine_does_not() {
        // Tabulation: flipping input bit i XORs in one of 128 random
        // byte-pair deltas → every (input, output) bit pair sits within
        // sampling noise of 0.5 (worst pair ~0.2 over 61×16 pairs).
        // Affine: the delta is the constant a·2^i mod p (occasionally
        // shifted by p when the addition wraps), so low output bits are
        // near-deterministic → worst-pair deviation ≈ 0.5. Both are sound
        // for level sampling; the metric shows why avalanche is the wrong
        // soundness criterion for this algorithm.
        let bases: Vec<u64> = mixed_labels(2_000).collect();
        let tab = build(HashFamilyKind::Tabulation, 5);
        let aff = build(HashFamilyKind::Pairwise, 5);
        let tab_bias = worst_avalanche_bias(&tab, bases.iter().copied(), 16);
        let aff_bias = worst_avalanche_bias(&aff, bases.iter().copied(), 16);
        assert!(tab_bias < 0.35, "tabulation bias {tab_bias}");
        assert!(
            aff_bias > 0.4,
            "affine low bits near-deterministic: {aff_bias}"
        );
        assert!(tab_bias < aff_bias);
    }
}
