//! Dietzfelbinger's multiply–shift family.
//!
//! `h_a(x) = (a · x mod 2^64) >> (64 − L)` with `a` a random odd 64-bit
//! multiplier is universal (collision probability ≤ `2/2^L`) but **not**
//! strongly 2-universal: hash *values* are not pairwise uniform, only
//! collision-bounded. It is ~3× cheaper than field arithmetic, which is why
//! practical systems are tempted by it — the E11 ablation quantifies what
//! that substitution does to sketch accuracy (typically: small but
//! measurable bias on adversarially structured label sets, fine on random
//! ones).

use crate::lanes::{mul_shift_lanes, LANES};
use crate::seeds::SeedRng;

/// Output width: all families in this crate hash into `[0, 2^61)` so that
/// level statistics are directly comparable.
const OUT_BITS: u32 = 61;

/// The multiply–shift hash `x ↦ (a·x) >> 3` (top 61 bits of the product).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MultiplyShift {
    a: u64,
}

impl MultiplyShift {
    /// Draw a random odd multiplier.
    pub fn random(rng: &mut SeedRng) -> Self {
        MultiplyShift {
            a: rng.next_u64() | 1,
        }
    }

    /// Construct from an explicit multiplier (forced odd).
    pub fn from_multiplier(a: u64) -> Self {
        MultiplyShift { a: a | 1 }
    }

    /// The multiplier.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// Evaluate; returns a value in `[0, 2^61)`.
    #[inline(always)]
    pub fn eval(&self, x: u64) -> u64 {
        self.a.wrapping_mul(x) >> (64 - OUT_BITS)
    }

    /// Evaluate the hash over a slice, writing `h(labels[i])` to `out[i]`
    /// (the bulk primitive behind `HashFamily::hash_slice_into`).
    ///
    /// Pure wrapping multiply + shift over [`LANES`]-wide blocks
    /// ([`mul_shift_lanes`]) — the kernel that vectorizes outright
    /// (AVX2 lowers it to `vpmuludq`/`vpsllq` sequences).
    /// Bitwise-identical to [`MultiplyShift::eval_into_scalar`].
    pub fn eval_into(&self, labels: &[u64], out: &mut [u64]) {
        let (blocks, tail) = labels.as_chunks::<LANES>();
        let (oblocks, otail) = out.as_chunks_mut::<LANES>();
        for (ob, xs) in oblocks.iter_mut().zip(blocks) {
            *ob = mul_shift_lanes(self.a, xs, 64 - OUT_BITS);
        }
        self.eval_into_scalar(tail, otail);
    }

    /// The per-element bulk loop the lane kernel replaced — always
    /// compiled, the equivalence oracle for [`MultiplyShift::eval_into`].
    pub fn eval_into_scalar(&self, labels: &[u64], out: &mut [u64]) {
        let a = self.a;
        for (o, &x) in out.iter_mut().zip(labels) {
            *o = a.wrapping_mul(x) >> (64 - OUT_BITS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::SeedRng;

    #[test]
    fn multiplier_is_always_odd() {
        for s in 0..32 {
            let h = MultiplyShift::random(&mut SeedRng::from_seed(s));
            assert_eq!(h.a() & 1, 1);
        }
        assert_eq!(MultiplyShift::from_multiplier(4).a(), 5);
    }

    #[test]
    fn output_fits_61_bits() {
        let h = MultiplyShift::from_multiplier(0x9E37_79B9_7F4A_7C15);
        for x in [0u64, 1, u64::MAX, 1 << 40] {
            assert!(h.eval(x) < (1 << 61));
        }
    }

    #[test]
    fn eval_is_top_bits_of_product() {
        let h = MultiplyShift::from_multiplier(3);
        let x = 1u64 << 62;
        assert_eq!(h.eval(x), (3u64.wrapping_mul(x)) >> 3);
    }

    #[test]
    fn collision_rate_is_universal() {
        // Universal family: Pr[h(x)=h(y) in low 16 bits of output] ≤ 2/2^16.
        let mut collisions = 0u64;
        let trials = 300u64;
        let pairs = 1000u64;
        for t in 0..trials {
            let h = MultiplyShift::random(&mut SeedRng::from_seed(77 + t));
            for i in 0..pairs {
                if h.eval(2 * i) & 0xFFFF == h.eval(2 * i + 1) & 0xFFFF {
                    collisions += 1;
                }
            }
        }
        let rate = collisions as f64 / (trials * pairs) as f64;
        assert!(rate < 8.0 / 65536.0, "rate {rate}");
    }
}
