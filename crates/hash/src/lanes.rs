//! Lane-oriented (SIMD-shaped) arithmetic kernels behind the bulk hash
//! paths.
//!
//! Every `eval_into` in this crate processes labels in fixed-width blocks
//! of [`LANES`] independent elements written as plain array arithmetic —
//! no intrinsics, no `unsafe` (the crate-level `forbid(unsafe_code)`
//! stands). The shape is chosen so LLVM's auto-vectorizer can lower each
//! block to vector instructions where the target ISA has them, and so
//! that even where it cannot (the 61-bit field multiply needs the full
//! 128-bit product, which x86 SIMD lacks below AVX-512), the block still
//! wins by breaking loop-carried dependencies, removing data-dependent
//! branches from the modular reduction, and eliding per-element bounds
//! checks.
//!
//! * **Portable lanes** — the default [`LANES`] = 4 keeps the working set
//!   of a block inside the register file on every 64-bit target.
//! * **AVX2 fast path** — compiled with `target_feature = "avx2"` (e.g.
//!   `RUSTFLAGS="-C target-cpu=native"` or `-C target-feature=+avx2`),
//!   [`LANES`] widens to 8 so a block fills two 256-bit registers; the
//!   multiply–shift kernel then lowers to genuine vector code
//!   (`vpmuludq`/`vpsllvq` sequences), and the field kernels gain deeper
//!   independent pipelines. Tabulation stays per-element by measurement:
//!   its data-dependent table gathers cannot vectorize below AVX-512, and
//!   lane blocks only add register pressure (see `Tabulation::eval_into`).
//! * **Scalar fallback, always compiled** — every family keeps its
//!   original per-element loop as `eval_into_scalar`, reachable through
//!   [`crate::HashFamily::hash_slice_into_scalar`]. It is the equivalence
//!   oracle: differential tests assert the lane path is bitwise-identical
//!   on every family, and it remains the reference implementation should
//!   a new target miscompile the lane shape.
//!
//! All kernels produce the **canonical** representative in `[0, p)`, so
//! lane and scalar paths agree bit-for-bit — proven by the proptests in
//! `tests/lane_equivalence.rs`, not just asserted.

use crate::field61::P61;

/// Number of independent elements processed per block by the lane kernels.
///
/// 8 with AVX2 enabled at compile time (two 256-bit registers of `u64`),
/// 4 otherwise (fits SSE2's two 128-bit registers and every aarch64 NEON
/// configuration). The value is exported so benches can report which path
/// was compiled.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
pub const LANES: usize = 8;
/// Number of independent elements processed per block by the lane kernels.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
pub const LANES: usize = 4;

/// Branch-free `(a·x + c) mod p` over the full 122-bit product.
///
/// Bitwise-identical to [`crate::field61::mul_add61`] (both return the
/// canonical representative), but with the final conditional subtracts
/// expressed as masked arithmetic so a lane of these has no data-dependent
/// branches for the vectorizer (or the branch predictor) to stumble on.
#[inline(always)]
pub fn mul_add61_branchless(a: u64, x: u64, c: u64) -> u64 {
    debug_assert!(a < P61 && x < P61 && c < P61);
    let wide = (a as u128) * (x as u128) + (c as u128);
    // wide < p² ≤ 2^122: split at bit 61 (2^61 ≡ 1 mod p) and fold twice.
    let lo = (wide as u64) & P61; // ≤ p
    let hi = (wide >> 61) as u64; // < p (wide < p·2^61)
    let s = lo + hi; // < 2^62, no overflow
    let t = (s & P61) + (s >> 61); // ≡ s (mod p), ≤ p + 1
    t - (P61 & ((t >= P61) as u64).wrapping_neg())
}

/// One affine evaluation `(a·xs[i] + b) mod p` across a block of lanes
/// with a shared multiplier and offset — the [`crate::Pairwise61`] bulk
/// step.
#[inline(always)]
pub fn affine61_lanes(a: u64, xs: &[u64; LANES], b: u64) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    for i in 0..LANES {
        out[i] = mul_add61_branchless(a, xs[i], b);
    }
    out
}

/// One Horner step `(acc[i]·xs[i] + c) mod p` across a block of lanes —
/// the [`crate::Polynomial61`] bulk step (per-lane accumulators, shared
/// coefficient).
#[inline(always)]
pub fn horner61_lanes(acc: &[u64; LANES], xs: &[u64; LANES], c: u64) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    for i in 0..LANES {
        out[i] = mul_add61_branchless(acc[i], xs[i], c);
    }
    out
}

/// One multiply–shift evaluation `(a·xs[i] mod 2^64) >> shift` across a
/// block of lanes — the [`crate::MultiplyShift`] bulk step. Pure wrapping
/// integer ops: this is the kernel that vectorizes outright.
#[inline(always)]
pub fn mul_shift_lanes(a: u64, xs: &[u64; LANES], shift: u32) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    for i in 0..LANES {
        out[i] = a.wrapping_mul(xs[i]) >> shift;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field61::mul_add61;

    #[test]
    fn lanes_is_a_supported_width() {
        const { assert!(LANES == 4 || LANES == 8) }
    }

    #[test]
    fn branchless_mul_add_matches_reference_on_boundaries() {
        let vals = [0u64, 1, 2, P61 / 2, P61 - 2, P61 - 1, 1 << 60, 12345];
        for &a in &vals {
            for &x in &vals {
                for &c in &vals {
                    assert_eq!(
                        mul_add61_branchless(a, x, c),
                        mul_add61(a, x, c),
                        "a={a} x={x} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn affine_lanes_match_scalar() {
        let xs: [u64; LANES] = std::array::from_fn(|i| (P61 - 1) - i as u64);
        let out = affine61_lanes(3, &xs, 7);
        for i in 0..LANES {
            assert_eq!(out[i], mul_add61(3, xs[i], 7));
        }
    }

    #[test]
    fn mul_shift_lanes_match_scalar() {
        let a = 0x9E37_79B9_7F4A_7C15u64 | 1;
        let xs: [u64; LANES] = std::array::from_fn(|i| u64::MAX - i as u64);
        let out = mul_shift_lanes(a, &xs, 3);
        for i in 0..LANES {
            assert_eq!(out[i], a.wrapping_mul(xs[i]) >> 3);
        }
    }
}
