//! Folding arbitrary 64-bit labels into the hashable universe `[0, 2^61 − 1)`.
//!
//! The pairwise-independence guarantees of [`crate::pairwise`] hold over the
//! field `GF(p)`, `p = 2^61 − 1`, so the *native* label universe of every
//! sketch in this workspace is `[0, p)`. That covers 61-bit identifiers
//! (IPv4/port 5-tuples, compacted flow ids, database surrogate keys, …)
//! directly. For labels that genuinely use all 64 bits — or for arbitrary
//! `Hash` types — we fold through a fixed *bijective* 64-bit mixer and then
//! truncate to 61 bits.
//!
//! Truncation makes labels `x` and `x'` collide iff
//! `mix64(x) ≡ mix64(x') (mod 2^61)` — probability `≈ 2^-61` per pair under
//! the mixer, i.e. a birthday bound of ~`k²/2^62` for `k` distinct labels.
//! For `k = 10^9` that is < 2.2 × 10⁻⁴ — far below the sketch's own `ε`.
//! This mirrors standard practice in production sketches (DataSketches folds
//! arbitrary input through MurmurHash3 before the theta transform).

/// SplitMix64 finalizer — a fixed, seedless, bijective mixer on `u64`.
///
/// Used only to *decorrelate label structure* (e.g. sequential ids) before
/// truncation to the 61-bit universe; all probabilistic guarantees come from
/// the seeded pairwise family applied afterwards. Being a bijection it never
/// introduces collisions on its own.
#[inline(always)]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Inverse of [`mix64`] (the finalizer is a bijection). Exposed for tests.
pub fn unmix64(mut x: u64) -> u64 {
    // Invert x ^= x >> 31 (also undoes the implicit >>62 part).
    x ^= x >> 31;
    x ^= x >> 62;
    x = x.wrapping_mul(inv_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 27;
    x ^= x >> 54;
    x = x.wrapping_mul(inv_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 30;
    x ^= x >> 60;
    x.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

/// Multiplicative inverse mod 2^64 of an odd constant (Newton's iteration).
fn inv_mul(a: u64) -> u64 {
    let mut x = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

/// Fold an arbitrary `u64` label into the sketch universe `[0, 2^61 − 1)`.
///
/// Labels already `< 2^61 − 1` that must round-trip exactly should be used
/// directly instead (the sketches accept raw labels); `fold61` is for
/// full-range or structured identifiers.
#[inline(always)]
pub fn fold61(x: u64) -> u64 {
    // Truncate to 61 bits, then clamp the two out-of-field values onto
    // in-field ones (2^61-1 and 2^61-2 ≡ p-1... both map below p).
    let y = mix64(x) & ((1u64 << 61) - 1);
    if y >= crate::field61::P61 {
        y - crate::field61::P61
    } else {
        y
    }
}

/// Fold any `Hash` value into the sketch universe via the default hasher
/// followed by [`fold61`].
///
/// Convenience only: the std hasher is not seeded per-sketch, so this is a
/// fixed (but high-quality) mapping, exactly analogous to pre-hashing input
/// keys with MurmurHash in DataSketches.
pub fn fold_label<T: std::hash::Hash>(value: &T) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    fold61(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field61::P61;

    #[test]
    fn mix64_is_bijective_roundtrip() {
        for x in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF, 1 << 63] {
            assert_eq!(unmix64(mix64(x)), x, "x = {x}");
        }
    }

    #[test]
    fn inv_mul_is_inverse() {
        for a in [
            0xBF58_476D_1CE4_E5B9u64,
            0x94D0_49BB_1331_11EB,
            3,
            0xFFFF_FFFF_FFFF_FFFF,
        ] {
            assert_eq!(a.wrapping_mul(inv_mul(a)), 1);
        }
    }

    #[test]
    fn fold61_in_range() {
        for x in 0u64..10_000 {
            assert!(fold61(x) < P61);
        }
        assert!(fold61(u64::MAX) < P61);
    }

    #[test]
    fn fold61_no_collisions_on_small_ranges() {
        // Bijective mixer + 61-bit truncation: collisions in a 1e5 range
        // would be a catastrophic bug, not bad luck (P ≈ 2e-9).
        let mut seen = std::collections::HashSet::new();
        for x in 0u64..100_000 {
            assert!(seen.insert(fold61(x)), "collision at {x}");
        }
    }

    #[test]
    fn fold_label_stable_for_equal_values() {
        assert_eq!(fold_label(&"10.0.0.1:443"), fold_label(&"10.0.0.1:443"));
        assert_ne!(fold_label(&"10.0.0.1:443"), fold_label(&"10.0.0.2:443"));
    }

    #[test]
    fn mix64_decorrelates_sequences() {
        // Consecutive inputs should not share trailing-zero structure.
        let mut level_ge_8 = 0;
        let n = 1u64 << 16;
        for x in 0..n {
            if mix64(x).trailing_zeros() >= 8 {
                level_ge_8 += 1;
            }
        }
        let expect = (n >> 8) as f64;
        let got = level_ge_8 as f64;
        assert!(
            (got - expect).abs() < 5.0 * expect.sqrt(),
            "got {got}, expect {expect}"
        );
    }
}
