//! Arithmetic over the Mersenne prime field `GF(p)` with `p = 2^61 − 1`.
//!
//! Mersenne primes admit branch-light modular reduction: a 122-bit product
//! splits into two 61-bit halves whose sum is congruent to the product
//! (because `2^61 ≡ 1 (mod p)`). All sketch-critical hashing in this
//! workspace runs over this field, so the routines here are written for the
//! hot path: no division, no data-dependent branching beyond a final
//! conditional subtract.
//!
//! Elements are represented as `u64` values in `[0, p)`. The wrapper type
//! [`Field61`] enforces the range invariant at construction; the free
//! functions (`add61`, `mul61`, …) operate on raw `u64` for zero-overhead
//! use inside hash kernels and require (and preserve) in-range inputs.

/// The Mersenne prime `2^61 − 1 = 2_305_843_009_213_693_951`.
pub const P61: u64 = (1u64 << 61) - 1;

/// Reduce an arbitrary `u64` into `[0, p)`.
///
/// Values in `[p, 2^64)` wrap around; callers that need injectivity must
/// restrict their universe to `[0, p)` (see crate-level docs and
/// [`crate::mix::fold61`]).
#[inline(always)]
pub fn reduce64(x: u64) -> u64 {
    // x = hi·2^61 + lo with hi < 8, and 2^61 ≡ 1, so x ≡ hi + lo.
    let r = (x & P61) + (x >> 61);
    if r >= P61 {
        r - P61
    } else {
        r
    }
}

/// Reduce a 128-bit value into `[0, p)`.
#[inline(always)]
pub fn reduce128(x: u128) -> u64 {
    // Split into low 61 bits and the (≤ 67-bit) high part, fold once into a
    // ≤ 68-bit value, then fold again with `reduce64`.
    let lo = (x as u64) & P61;
    let hi = x >> 61; // < 2^67
    let hi_lo = (hi as u64) & P61;
    let hi_hi = (hi >> 61) as u64; // < 64
    let mut r = lo + hi_lo + hi_hi;
    // r < 2^62 + small; two conditional subtracts suffice.
    if r >= P61 {
        r -= P61;
    }
    if r >= P61 {
        r -= P61;
    }
    r
}

/// `(a + b) mod p` for `a, b < p`.
#[inline(always)]
pub fn add61(a: u64, b: u64) -> u64 {
    debug_assert!(a < P61 && b < P61);
    let s = a + b; // < 2^62, no overflow
    if s >= P61 {
        s - P61
    } else {
        s
    }
}

/// `(a - b) mod p` for `a, b < p`.
#[inline(always)]
pub fn sub61(a: u64, b: u64) -> u64 {
    debug_assert!(a < P61 && b < P61);
    if a >= b {
        a - b
    } else {
        a + P61 - b
    }
}

/// `(a · b) mod p` for `a, b < p`.
#[inline(always)]
pub fn mul61(a: u64, b: u64) -> u64 {
    debug_assert!(a < P61 && b < P61);
    reduce128((a as u128) * (b as u128))
}

/// `(a · b + c) mod p` for `a, b, c < p` — the affine hash kernel.
#[inline(always)]
pub fn mul_add61(a: u64, b: u64, c: u64) -> u64 {
    debug_assert!(a < P61 && b < P61 && c < P61);
    reduce128((a as u128) * (b as u128) + (c as u128))
}

/// `a^e mod p` by square-and-multiply. Not hot-path; used by tests and by
/// inverse computation.
pub fn pow61(mut a: u64, mut e: u64) -> u64 {
    let mut acc = 1u64;
    a = reduce64(a);
    while e > 0 {
        if e & 1 == 1 {
            acc = mul61(acc, a);
        }
        a = mul61(a, a);
        e >>= 1;
    }
    acc
}

/// Multiplicative inverse of `a ≠ 0` via Fermat's little theorem.
///
/// # Panics
/// Panics if `a ≡ 0 (mod p)`.
pub fn inv61(a: u64) -> u64 {
    let a = reduce64(a);
    assert!(a != 0, "zero has no multiplicative inverse");
    pow61(a, P61 - 2)
}

/// A field element of `GF(2^61 − 1)`, guaranteed in `[0, p)`.
///
/// The wrapper exists for code that wants type-level assurance of the range
/// invariant (e.g. seed material); hash kernels use the raw free functions.
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    Debug,
    Default,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Field61(u64);

impl Field61 {
    /// The additive identity.
    pub const ZERO: Field61 = Field61(0);
    /// The multiplicative identity.
    pub const ONE: Field61 = Field61(1);

    /// Construct from an arbitrary `u64`, reducing mod `p`.
    #[inline]
    pub fn new(x: u64) -> Self {
        Field61(reduce64(x))
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Exponentiation.
    #[inline]
    pub fn pow(self, e: u64) -> Field61 {
        Field61(pow61(self.0, e))
    }

    /// Multiplicative inverse. Panics on zero.
    #[inline]
    pub fn inv(self) -> Field61 {
        Field61(inv61(self.0))
    }
}

impl std::ops::Add for Field61 {
    type Output = Field61;
    #[inline]
    fn add(self, rhs: Field61) -> Field61 {
        Field61(add61(self.0, rhs.0))
    }
}

impl std::ops::Sub for Field61 {
    type Output = Field61;
    #[inline]
    fn sub(self, rhs: Field61) -> Field61 {
        Field61(sub61(self.0, rhs.0))
    }
}

impl std::ops::Mul for Field61 {
    type Output = Field61;
    #[inline]
    fn mul(self, rhs: Field61) -> Field61 {
        Field61(mul61(self.0, rhs.0))
    }
}

impl From<u64> for Field61 {
    fn from(x: u64) -> Self {
        Field61::new(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p61_is_mersenne() {
        assert_eq!(P61, 2_305_843_009_213_693_951);
        assert_eq!(P61, (1u64 << 61) - 1);
    }

    #[test]
    fn reduce64_identity_below_p() {
        for x in [0, 1, 12345, P61 - 1] {
            assert_eq!(reduce64(x), x);
        }
    }

    #[test]
    fn reduce64_wraps_at_p() {
        assert_eq!(reduce64(P61), 0);
        assert_eq!(reduce64(P61 + 1), 1);
        // 2^64 − 1 = 8·(p + 1) − 1 = 8p + 7 ≡ 7.
        assert_eq!(reduce64(u64::MAX), 7);
    }

    #[test]
    fn reduce128_matches_naive_mod() {
        let cases: [u128; 8] = [
            0,
            1,
            P61 as u128,
            (P61 as u128) * 2 + 5,
            u64::MAX as u128,
            (P61 as u128) * (P61 as u128),
            ((P61 - 1) as u128) * ((P61 - 1) as u128) + (P61 - 1) as u128,
            u128::MAX >> 6, // 122-bit, the max a mul_add can produce
        ];
        for &x in &cases {
            assert_eq!(reduce128(x) as u128, x % (P61 as u128), "x = {x}");
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let pairs = [(0, 0), (1, P61 - 1), (P61 - 1, P61 - 1), (12345, 67890)];
        for (a, b) in pairs {
            let s = add61(a, b);
            assert!(s < P61);
            assert_eq!(sub61(s, b), a);
            assert_eq!(sub61(s, a), b);
        }
    }

    #[test]
    fn mul_matches_naive() {
        let vals = [0u64, 1, 2, 3, 1 << 30, P61 - 1, P61 / 2, 987_654_321];
        for &a in &vals {
            for &b in &vals {
                let expect = ((a as u128 * b as u128) % P61 as u128) as u64;
                assert_eq!(mul61(a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let vals = [0u64, 1, P61 - 1, 555_555_555, 1 << 60];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    assert_eq!(mul_add61(a, b, c), add61(mul61(a, b), c));
                }
            }
        }
    }

    #[test]
    fn fermat_inverse() {
        for a in [1u64, 2, 3, 17, P61 - 1, 1 << 40] {
            let ai = inv61(a);
            assert_eq!(mul61(a, ai), 1, "a = {a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        inv61(0);
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow61(2, 10), 1024);
        assert_eq!(pow61(3, 4), 81);
    }

    #[test]
    fn pow_of_two_wraps_to_one() {
        // 2^61 = p + 1 ≡ 1 (mod p)
        assert_eq!(pow61(2, 61), 1);
        assert_eq!(pow61(2, 122), 1);
    }

    #[test]
    fn field_wrapper_ops() {
        let a = Field61::new(u64::MAX);
        assert!(a.value() < P61);
        let b = Field61::new(7);
        assert_eq!(a + b - b, a);
        assert_eq!(a * b * b.inv(), a);
        assert_eq!(Field61::ONE.pow(999), Field61::ONE);
        assert_eq!(Field61::ZERO + Field61::ZERO, Field61::ZERO);
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // a^(p-1) ≡ 1 for a ≠ 0.
        for a in [2u64, 3, 65537, P61 - 2] {
            assert_eq!(pow61(a, P61 - 1), 1);
        }
    }
}
