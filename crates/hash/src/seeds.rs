//! Seed material and a deterministic seed RNG.
//!
//! Coordinated sampling only works if every party builds *bit-identical*
//! hash functions. Relying on an external RNG implementation for that would
//! tie the on-the-wire compatibility of sketches to a third-party crate's
//! stream stability, so seed expansion is implemented here from scratch:
//! [`SeedRng`] is a SplitMix64 generator with rejection-sampled bounded
//! draws, and [`SeedSequence`] derives independent per-trial seeds from one
//! user-supplied master seed. The `rand` crate is used elsewhere only for
//! *workload* synthesis, never for sketch-defining randomness.

use crate::mix::mix64;

/// Deterministic seed-expansion RNG (SplitMix64).
///
/// Not a general-purpose RNG: it exists to expand master seeds into hash
/// coefficients identically on every party, forever. The output stream for
/// a given seed is part of this crate's compatibility contract.
#[derive(Clone, Debug)]
pub struct SeedRng {
    state: u64,
}

impl SeedRng {
    /// Create a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SeedRng { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state.wrapping_sub(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform draw in `[0, bound)` by rejection sampling (exact, no modulo
    /// bias — hash coefficients must be uniform for the 2-universality
    /// proof to apply).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }
}

/// A per-family seed: everything needed to reconstruct one hash function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FamilySeed(pub u64);

/// Derives independent [`FamilySeed`]s for each trial of a multi-trial
/// sketch from a single master seed.
///
/// Two `SeedSequence`s built from the same master seed yield the same
/// per-trial seeds in the same order — this is what lets physically
/// separated parties coordinate by exchanging just one `u64` up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Seed for trial `t` (stable under changes to the trial count, so a
    /// sketch with 5 trials shares its first 5 hash functions with one built
    /// from the same master seed and 9 trials — which is what makes their
    /// common prefix mergeable).
    pub fn trial_seed(&self, t: usize) -> FamilySeed {
        // Domain-separate trials with a distinct stream per index.
        FamilySeed(mix64(self.master ^ mix64(0xC0DE_0000_0000_0000 ^ t as u64)))
    }

    /// A `SeedRng` positioned at the start of trial `t`'s stream.
    pub fn trial_rng(&self, t: usize) -> SeedRng {
        SeedRng::from_seed(self.trial_seed(t).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_rng_is_deterministic() {
        let mut a = SeedRng::from_seed(99);
        let mut b = SeedRng::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_exhaustive_for_small_bounds() {
        let mut rng = SeedRng::from_seed(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SeedRng::from_seed(0).below(0);
    }

    #[test]
    fn below_unbiased_for_awkward_bound() {
        // bound just above u64::MAX/2 maximizes rejection; check mean.
        let bound = (u64::MAX / 2) + 3;
        let mut rng = SeedRng::from_seed(5);
        let mut acc = 0f64;
        let n = 4000;
        for _ in 0..n {
            acc += rng.below(bound) as f64 / bound as f64;
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let s = SeedSequence::new(0xABCD);
        let seeds: Vec<_> = (0..64).map(|t| s.trial_seed(t)).collect();
        let uniq: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(uniq.len(), seeds.len());
        // Stability: same master, same seeds.
        let s2 = SeedSequence::new(0xABCD);
        assert_eq!(s2.trial_seed(17), seeds[17]);
    }

    #[test]
    fn different_masters_diverge() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        assert_ne!(a.trial_seed(0), b.trial_seed(0));
    }
}
