//! Deliberately defective hash functions for the E11 ablation.
//!
//! The Gibbons–Tirthapura estimator is `|S| · 2^l`, which is unbiased
//! *because* `Pr[lvl(x) ≥ l] = 2^{-l}` exactly under a pairwise-independent
//! hash. These saboteurs each violate that premise in a controlled way so
//! the experiment can show the failure mode, not just assert it:
//!
//! * [`Sabotaged::ShiftedLevels`] — left-shifts an otherwise good hash by
//!   `k` bits, inflating every item's level by `k`: sampling probability at
//!   level `l` becomes `2^{-(l-k)}`, so the estimate converges to `2^k · F₀`
//!   (a clean, predictable multiplicative bias).
//! * [`Sabotaged::LowEntropy`] — an affine hash whose multiplier has only a
//!   few random bits, modelling an under-seeded generator; estimates become
//!   seed-lottery dependent with huge variance.
//! * [`Sabotaged::Identity`] — no hashing at all. On *random* labels this
//!   accidentally works; on *sequential* labels the level structure is
//!   deterministic and the per-trial "randomness" vanishes entirely (all
//!   trials agree, so median boosting buys nothing and adversarial inputs
//!   can place every label at level 0).

use crate::field61::P61;
use crate::pairwise::Pairwise61;
use crate::seeds::SeedRng;

/// A defective hash function (see module docs for the failure modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Sabotaged {
    /// Good hash shifted left by `k` — biases levels upward by exactly `k`.
    ShiftedLevels {
        /// The underlying (sound) affine hash.
        inner: Pairwise61,
        /// Bits of upward level bias.
        k: u8,
    },
    /// Affine hash whose multiplier carries only 4 bits of entropy.
    LowEntropy {
        /// The (weak) affine hash actually used.
        inner: Pairwise61,
    },
    /// `h(x) = x` — adversarially exploitable, zero per-seed variance.
    Identity,
}

impl Sabotaged {
    /// Build the shifted-levels saboteur.
    pub fn shifted(k: u8, rng: &mut SeedRng) -> Self {
        assert!(k <= 8, "shift beyond 8 bits makes levels saturate");
        Sabotaged::ShiftedLevels {
            inner: Pairwise61::random(rng),
            k,
        }
    }

    /// Build the low-entropy saboteur: multiplier drawn from a 16-element
    /// set, offset fixed to zero.
    pub fn low_entropy(rng: &mut SeedRng) -> Self {
        let a = (rng.below(16) + 1) << 7; // 16 possible multipliers, all even
        Sabotaged::LowEntropy {
            inner: Pairwise61::from_coefficients(a, 0),
        }
    }

    /// Evaluate; output stays within `[0, 2^61)` for comparability.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        match self {
            Sabotaged::ShiftedLevels { inner, k } => (inner.eval(x) << k) & ((1u64 << 61) - 1),
            Sabotaged::LowEntropy { inner } => inner.eval(x),
            Sabotaged::Identity => x % P61,
        }
    }

    /// Evaluate the hash over a slice, writing `h(labels[i])` to `out[i]`
    /// (the bulk primitive behind `HashFamily::hash_slice_into`; the
    /// saboteur variant is dispatched once per slice, not once per item).
    ///
    /// `ShiftedLevels` and `LowEntropy` ride the underlying affine lane
    /// kernel (`Pairwise61::eval_into`); `Identity` stays per-element —
    /// it exists to be broken, not fast. Bitwise-identical to
    /// [`Sabotaged::eval_into_scalar`] in every variant.
    pub fn eval_into(&self, labels: &[u64], out: &mut [u64]) {
        match self {
            Sabotaged::ShiftedLevels { inner, k } => {
                inner.eval_into(labels, out);
                let k = *k;
                for o in out.iter_mut() {
                    *o = (*o << k) & ((1u64 << 61) - 1);
                }
            }
            Sabotaged::LowEntropy { inner } => inner.eval_into(labels, out),
            Sabotaged::Identity => {
                for (o, &x) in out.iter_mut().zip(labels) {
                    *o = x % P61;
                }
            }
        }
    }

    /// The per-element bulk loop the lane path replaced — always compiled,
    /// the equivalence oracle for [`Sabotaged::eval_into`].
    pub fn eval_into_scalar(&self, labels: &[u64], out: &mut [u64]) {
        match self {
            Sabotaged::ShiftedLevels { inner, k } => {
                let k = *k;
                for (o, &x) in out.iter_mut().zip(labels) {
                    *o = (inner.eval(x) << k) & ((1u64 << 61) - 1);
                }
            }
            Sabotaged::LowEntropy { inner } => inner.eval_into_scalar(labels, out),
            Sabotaged::Identity => {
                for (o, &x) in out.iter_mut().zip(labels) {
                    *o = x % P61;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::SeedRng;

    #[test]
    fn shifted_levels_raise_trailing_zeros() {
        let mut rng = SeedRng::from_seed(2);
        let Sabotaged::ShiftedLevels { inner, k } = Sabotaged::shifted(3, &mut rng) else {
            panic!("wrong variant")
        };
        let s = Sabotaged::ShiftedLevels { inner, k };
        for x in 1u64..100 {
            let base = inner.eval(x);
            if base != 0 && (base << 3) < (1 << 61) {
                assert_eq!(s.eval(x).trailing_zeros(), base.trailing_zeros() + 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shift beyond 8 bits")]
    fn excessive_shift_rejected() {
        Sabotaged::shifted(9, &mut SeedRng::from_seed(0));
    }

    #[test]
    fn low_entropy_has_at_most_16_behaviours() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..200 {
            let h = Sabotaged::low_entropy(&mut SeedRng::from_seed(s));
            seen.insert(h.eval(123456));
        }
        assert!(seen.len() <= 16, "entropy leak: {} behaviours", seen.len());
    }

    #[test]
    fn identity_passes_labels_through() {
        let h = Sabotaged::Identity;
        assert_eq!(h.eval(42), 42);
        assert_eq!(h.eval(P61 + 5), 5); // folded into the field
    }
}
