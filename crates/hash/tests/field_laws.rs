//! Property tests: the `GF(2^61 − 1)` arithmetic must satisfy the field
//! axioms, and the hash families must satisfy their family-level
//! contracts, for *arbitrary* inputs — the unit tests check examples,
//! these check the laws.

use proptest::prelude::*;

use gt_hash::field61::{add61, inv61, mul61, mul_add61, pow61, reduce128, reduce64, sub61, P61};
use gt_hash::{FamilySeed, HashFamilyKind, LevelHasher, SeedRng};

fn elem() -> impl Strategy<Value = u64> {
    (0..P61).prop_map(|x| x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reduction_is_canonical(x in any::<u64>()) {
        let r = reduce64(x);
        prop_assert!(r < P61);
        prop_assert_eq!(r as u128, (x as u128) % (P61 as u128));
    }

    #[test]
    fn reduction128_matches_wide_mod(x in any::<u128>()) {
        // Constrain to the 122-bit range the kernels produce.
        let x = x >> 6;
        prop_assert_eq!(reduce128(x) as u128, x % (P61 as u128));
    }

    #[test]
    fn addition_laws(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!(add61(a, b), add61(b, a));
        prop_assert_eq!(add61(add61(a, b), c), add61(a, add61(b, c)));
        prop_assert_eq!(add61(a, 0), a);
        prop_assert_eq!(sub61(add61(a, b), b), a);
    }

    #[test]
    fn multiplication_laws(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!(mul61(a, b), mul61(b, a));
        prop_assert_eq!(mul61(mul61(a, b), c), mul61(a, mul61(b, c)));
        prop_assert_eq!(mul61(a, 1), a);
        // Distributivity.
        prop_assert_eq!(mul61(a, add61(b, c)), add61(mul61(a, b), mul61(a, c)));
        // Fused kernel agrees with the composition.
        prop_assert_eq!(mul_add61(a, b, c), add61(mul61(a, b), c));
    }

    #[test]
    fn multiplicative_inverse(a in 1..P61) {
        prop_assert_eq!(mul61(a, inv61(a)), 1);
    }

    #[test]
    fn exponent_laws(a in 1..P61, e1 in 0u64..1_000, e2 in 0u64..1_000) {
        prop_assert_eq!(
            mul61(pow61(a, e1), pow61(a, e2)),
            pow61(a, e1 + e2)
        );
    }

    #[test]
    fn mixer_is_injective_roundtrip(x in any::<u64>()) {
        prop_assert_eq!(gt_hash::mix::unmix64(gt_hash::mix64(x)), x);
    }

    #[test]
    fn seed_rng_below_is_in_range(seed in any::<u64>(), bound in 1u64..) {
        prop_assert!(SeedRng::from_seed(seed).below(bound) < bound);
    }

    #[test]
    fn every_family_is_deterministic_and_in_range(
        seed in any::<u64>(),
        x in 0..P61,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            HashFamilyKind::Pairwise,
            HashFamilyKind::KWise(3),
            HashFamilyKind::MultiplyShift,
            HashFamilyKind::Tabulation,
        ][kind_idx];
        let h1 = kind.build(FamilySeed(seed));
        let h2 = kind.build(FamilySeed(seed));
        let v = h1.hash_label(x);
        prop_assert_eq!(v, h2.hash_label(x));
        prop_assert!(v < (1u64 << 61));
        prop_assert!(h1.level(x) <= gt_hash::MAX_LEVEL);
    }

    #[test]
    fn affine_family_is_a_bijection(seed in any::<u64>(), x in 0..P61, y in 0..P61) {
        prop_assume!(x != y);
        let h = HashFamilyKind::Pairwise.build(FamilySeed(seed));
        prop_assert_ne!(h.hash_label(x), h.hash_label(y));
    }

    #[test]
    fn fold61_lands_in_field(x in any::<u64>()) {
        prop_assert!(gt_hash::fold61(x) < P61);
    }
}
