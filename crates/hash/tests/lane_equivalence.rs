//! Differential proof that the lane (SIMD-shaped) bulk hash kernels are
//! bitwise-identical to the scalar paths, for **every** hash family —
//! sound and sabotaged alike.
//!
//! The sketch's coordination contract hangs on `(kind, seed, label) →
//! hash` being one pure function across parties, machines, and code
//! paths. A lane kernel that differed from the scalar path in even one
//! bit would silently break union-compatibility between a party built
//! with AVX2 and one without, so the equivalence is proven here three
//! ways per family: lane vs scalar bulk, bulk vs per-item `eval`, and at
//! the field-boundary labels where a branchless reduction is most likely
//! to diverge from a branchy one.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_hash::{FamilySeed, HashFamilyKind, LevelHasher, P61};

/// Every constructible family, including the deliberately broken ones —
/// the ablation hashes ride the same bulk kernels, so they get the same
/// proof.
const ALL_KINDS: [HashFamilyKind; 8] = [
    HashFamilyKind::Pairwise,
    HashFamilyKind::KWise(2),
    HashFamilyKind::KWise(5),
    HashFamilyKind::MultiplyShift,
    HashFamilyKind::Tabulation,
    HashFamilyKind::SabotagedShift(3),
    HashFamilyKind::SabotagedLowEntropy,
    HashFamilyKind::SabotagedIdentity,
];

/// Field-boundary labels: extremes of `[0, p)` plus values straddling the
/// lane kernel's 61-bit fold points. Lengths around `LANES` are exercised
/// by the proptest's variable-length vectors.
fn boundary_labels() -> Vec<u64> {
    let mut v = vec![
        0u64,
        1,
        2,
        7,
        (1 << 61) - 2, // P61 - 1, the largest legal label
        P61 - 2,
        P61 / 2,
        1 << 60,
        (1 << 60) - 1,
        0xDEAD_BEEF_0000,
    ];
    // Repeat past a lane boundary so block and tail paths both run.
    let again = v.clone();
    v.extend(again);
    v
}

fn assert_all_paths_agree(kind: HashFamilyKind, seed: u64, labels: &[u64]) {
    let h = kind.build(FamilySeed(seed));
    let mut lane = vec![0u64; labels.len()];
    let mut scalar = vec![0u64; labels.len()];
    h.hash_slice_into(labels, &mut lane);
    h.hash_slice_into_scalar(labels, &mut scalar);
    assert_eq!(lane, scalar, "{kind:?} seed {seed}: lane vs scalar bulk");
    for (i, &x) in labels.iter().enumerate() {
        assert_eq!(
            lane[i],
            h.hash_label(x),
            "{kind:?} seed {seed}: bulk vs per-item at index {i} (label {x})"
        );
    }
}

#[test]
fn boundary_labels_hash_identically_on_every_path() {
    let labels = boundary_labels();
    for kind in ALL_KINDS {
        for seed in [0u64, 1, 9, 0xFEED] {
            assert_all_paths_agree(kind, seed, &labels);
        }
    }
}

#[test]
fn every_slice_length_around_the_lane_width_agrees() {
    // Tail handling: lengths 0..=3·LANES cover empty, sub-block, exact
    // multiples, and every possible tail remainder.
    let base: Vec<u64> = (0..(3 * gt_hash::LANES) as u64)
        .map(gt_hash::fold61)
        .collect();
    for kind in ALL_KINDS {
        for len in 0..=base.len() {
            assert_all_paths_agree(kind, 7, &base[..len]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lane_kernels_match_scalar_for_every_family(
        seed in any::<u64>(),
        raw in vec(any::<u64>(), 0..700),
    ) {
        // Labels must lie in [0, p); fold64 keeps arbitrary u64 input legal.
        let labels: Vec<u64> = raw.iter().map(|&x| gt_hash::fold61(x)).collect();
        for kind in ALL_KINDS {
            assert_all_paths_agree(kind, seed, &labels);
        }
    }

    #[test]
    fn survival_screen_matches_per_item_mask_compare(
        raw in vec(any::<u64>(), 1..64),
        level in 0u8..=gt_hash::MAX_LEVEL,
    ) {
        // Mix real hash outputs with the adversarial boundary hashes from
        // the level tests (0, p-1, exact powers of two).
        let mut hashes: Vec<u64> = raw;
        hashes.truncate(54);
        hashes.extend([0u64, 1, 2, 8, 96, 1 << 45, 1 << 60, (1 << 61) - 2, 0xDEAD_BEEF_0000]);
        let mask = gt_hash::survival_mask(level);
        let bits = gt_hash::survival_screen(&hashes, mask);
        for (i, &h) in hashes.iter().enumerate() {
            prop_assert_eq!(
                bits >> i & 1 == 1,
                gt_hash::level_of_hash(h) >= level,
                "hash {:#x} at level {}", h, level
            );
        }
        prop_assert_eq!(
            u64::from(bits.count_ones()),
            hashes.iter().filter(|&&h| h & mask == 0).count() as u64
        );
    }
}
