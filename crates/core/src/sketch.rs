//! The multi-trial Gibbons–Tirthapura sketch: `r` independent coordinated
//! sampling trials combined by the median, giving the paper's
//! `(ε, δ)`-approximation of distinct-label aggregates.
//!
//! [`GtSketch`] is generic over the per-label payload `V`; the common
//! instantiations have friendly aliases and wrappers:
//! [`DistinctSketch`] (`V = ()`, distinct counting / F₀) here, and
//! `SumDistinctSketch` in [`crate::sumdistinct`].

use gt_hash::{HashFamily, SeedSequence};

use crate::error::{Result, SketchError};
use crate::estimate::{median_f64, Estimate};
use crate::metrics::{InsertTally, MetricsSnapshot, SketchMetrics};
use crate::params::SketchConfig;
use crate::trial::{CoordinatedTrial, Payload, TrialInsert};

/// Transmitted state of one trial: `(level, items observed, sample
/// entries)` — the wire codec's unit of exchange.
pub type TrialState<V> = (u8, u64, Vec<(u64, V)>);

/// An `r`-trial coordinated-sampling sketch over labels in `[0, 2^61 − 1)`
/// with per-label payloads `V`.
///
/// # Coordination contract
///
/// Sketches are mergeable iff they were created with the same
/// [`SketchConfig`] **and** the same master seed. Merging then produces
/// exactly the sketch a single observer of the concatenated streams would
/// hold — the union operation is lossless and insensitive to duplication
/// and ordering.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GtSketch<V> {
    config: SketchConfig,
    master_seed: u64,
    trials: Vec<CoordinatedTrial<V>>,
    /// Observability counters (advisory; never feed the estimator, never
    /// travel on the wire).
    #[serde(skip)]
    metrics: SketchMetrics,
}

impl<V: Payload> GtSketch<V> {
    /// Create an empty sketch. Every party participating in a union must
    /// pass the same `config` and `master_seed`.
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        let seq: SeedSequence = config.seed_sequence(master_seed);
        let trials = (0..config.trials())
            .map(|t| {
                let hasher: HashFamily = config.hash_kind().build(seq.trial_seed(t));
                CoordinatedTrial::new(hasher, config.capacity())
            })
            .collect();
        GtSketch {
            config: *config,
            master_seed,
            trials,
            metrics: SketchMetrics::new(),
        }
    }

    /// Reassemble a sketch from transmitted per-trial states (the decode
    /// side of a wire codec): for each trial, its level, item count, and
    /// sample entries. Hash functions are rebuilt from `(config,
    /// master_seed)`, so only sample contents travel on the wire.
    ///
    /// # Errors
    /// Rejects trial counts that do not match the config and any per-trial
    /// state that violates the sample invariant.
    pub fn reassemble(
        config: &SketchConfig,
        master_seed: u64,
        trial_states: Vec<TrialState<V>>,
    ) -> Result<Self> {
        if trial_states.len() != config.trials() {
            return Err(SketchError::ConfigMismatch {
                detail: format!(
                    "message carries {} trials, config expects {}",
                    trial_states.len(),
                    config.trials()
                ),
            });
        }
        let seq = config.seed_sequence(master_seed);
        let trials = trial_states
            .into_iter()
            .enumerate()
            .map(|(t, (level, items, entries))| {
                let hasher = config.hash_kind().build(seq.trial_seed(t));
                CoordinatedTrial::from_parts(hasher, config.capacity(), level, items, entries)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(GtSketch {
            config: *config,
            master_seed,
            trials,
            metrics: SketchMetrics::new(),
        })
    }

    /// The sketch's configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The master seed (the coordination token).
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The per-trial state, for advanced estimators (similarity, predicate
    /// restriction) and for the test suite.
    pub fn trials(&self) -> &[CoordinatedTrial<V>] {
        &self.trials
    }

    /// Observe one `(label, payload)` item.
    ///
    /// Labels must lie in `[0, 2^61 − 1)`; fold bigger identifiers through
    /// [`gt_hash::fold61`] or use [`GtSketch::insert_hashed`].
    ///
    /// Metrics are tallied on the stack across the trial loop and flushed
    /// once, so the per-item cost is one or two atomic RMWs total instead
    /// of two per trial.
    #[inline]
    pub fn insert_with(&mut self, label: u64, payload: V) {
        let mut tally = InsertTally::default();
        for trial in &mut self.trials {
            let level_before = trial.level();
            tally.record(trial.insert(label, payload));
            tally.promotions += u64::from(trial.level() - level_before);
        }
        self.metrics.record_insert_tally(&tally);
    }

    /// Observe an item of any hashable type, folding it into the label
    /// universe with a fixed high-quality mixer (see `gt_hash::fold_label`).
    #[inline]
    pub fn insert_hashed<T: std::hash::Hash>(&mut self, item: &T, payload: V) {
        self.insert_with(gt_hash::mix::fold_label(item), payload);
    }

    /// Observe one `(label, payload)` item, merging the payload into the
    /// stored one on duplicate arrivals (see
    /// [`CoordinatedTrial::insert_merging`]). Metrics are tallied on the
    /// stack and flushed once, like [`GtSketch::insert_with`].
    #[inline]
    pub fn insert_merging_with(&mut self, label: u64, payload: V) {
        let mut tally = InsertTally::default();
        for trial in &mut self.trials {
            let level_before = trial.level();
            let outcome = trial.insert_merging(label, payload);
            tally.record(outcome);
            if outcome == TrialInsert::Duplicate {
                tally.local_reconciliations += 1;
            }
            tally.promotions += u64::from(trial.level() - level_before);
        }
        self.metrics.record_insert_tally(&tally);
    }

    /// Observe a batch of `(label, payload)` items with trial-major loop
    /// order: each trial sweeps the whole batch before the next trial
    /// runs.
    ///
    /// Semantically identical to calling [`GtSketch::insert_with`] per
    /// item (each trial is independent, and within one trial the item
    /// order is preserved), but each trial runs the batch-monomorphic
    /// kernel ([`CoordinatedTrial::extend_pairs_kernel`]): labels are
    /// hashed in bulk with the hash-family enum dispatched once per
    /// [`crate::trial::KERNEL_CHUNK`] labels, below-level items are
    /// rejected by one compare against the raw hash, and the trial's
    /// coefficients and sample table stay hot for the whole batch. The
    /// per-item vs batched vs kernel gap is measured by experiment `e4`
    /// (`experiments e4`, results in `results/BENCH_ingest.json`).
    pub fn insert_batch_with(&mut self, items: &[(u64, V)]) {
        let mut tally = InsertTally::default();
        for trial in &mut self.trials {
            trial.extend_pairs_kernel::<false>(items, &mut tally);
        }
        self.metrics.record_insert_tally(&tally);
    }

    /// Batch counterpart of [`GtSketch::insert_merging_with`]: observe
    /// `(label, payload)` items through the kernel, reconciling duplicate
    /// arrivals as `stored.merge(incoming)` — so payload-carrying
    /// workloads get the same fast path as plain distinct counting.
    /// Bitwise-identical (samples, levels, and metric snapshots) to the
    /// per-item merging loop.
    pub fn insert_batch_merging_with(&mut self, items: &[(u64, V)]) {
        let mut tally = InsertTally::default();
        for trial in &mut self.trials {
            trial.extend_pairs_kernel::<true>(items, &mut tally);
        }
        self.metrics.record_insert_tally(&tally);
    }

    /// Number of items observed (duplicates included).
    pub fn items_observed(&self) -> u64 {
        self.trials.first().map_or(0, |t| t.items_observed())
    }

    /// Highest sampling level across trials (diagnostics; grows as
    /// `log₂(F₀/c)`).
    pub fn max_level(&self) -> u8 {
        self.trials.iter().map(|t| t.level()).max().unwrap_or(0)
    }

    /// Total sampled entries across trials (≤ `trials · capacity`).
    pub fn sample_entries(&self) -> usize {
        self.trials.iter().map(|t| t.sample_len()).sum()
    }

    /// Bytes of heap memory held by the samples (space accounting, E3).
    pub fn heap_bytes(&self) -> usize {
        self.trials.iter().map(|t| t.heap_bytes()).sum()
    }

    /// `(ε, δ)`-estimate of the number of **distinct labels** observed:
    /// the median over trials of `|Sᵢ| · 2^{lᵢ}`.
    pub fn estimate_distinct(&self) -> Estimate {
        let mut per_trial: Vec<f64> = self.trials.iter().map(|t| t.estimate_distinct()).collect();
        Estimate {
            value: median_f64(&mut per_trial),
            epsilon: self.config.epsilon(),
            delta: self.config.delta(),
        }
    }

    /// Median-of-trials estimate of `Σ_{distinct x} weight(x, payload(x))`.
    ///
    /// The estimator is unbiased for any weight function; the `(ε, δ)`
    /// *relative*-error contract carries over when weights are bounded
    /// (see `crate::sumdistinct` for the precise statement).
    pub fn estimate_weighted(&self, weight: impl Fn(u64, V) -> f64 + Copy) -> f64 {
        let mut per_trial: Vec<f64> = self
            .trials
            .iter()
            .map(|t| t.estimate_weighted(weight))
            .collect();
        median_f64(&mut per_trial)
    }

    /// Merge `other` into `self` (the referee's union step).
    ///
    /// # Errors
    /// [`SketchError::SeedMismatch`] or [`SketchError::ConfigMismatch`] if
    /// the sketches are not coordinated.
    pub fn merge_from(&mut self, other: &GtSketch<V>) -> Result<()> {
        if self.master_seed != other.master_seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.config != other.config {
            return Err(SketchError::ConfigMismatch {
                detail: format!("{:?} vs {:?}", self.config, other.config),
            });
        }
        self.metrics.record_merge_call();
        for (mine, theirs) in self.trials.iter_mut().zip(other.trials.iter()) {
            let report = mine.merge_from(theirs)?;
            self.metrics.record_trial_merge(&report);
        }
        Ok(())
    }

    /// Union via the per-entry reference path
    /// ([`CoordinatedTrial::merge_from_reference`]) instead of the bulk
    /// kernel. Same checks, same metrics recording, bitwise-identical
    /// result — kept as the equivalence oracle for tests and as the
    /// `sequential reference` contender in experiment `e19`.
    ///
    /// # Errors
    /// As [`GtSketch::merge_from`].
    pub fn merge_from_reference(&mut self, other: &GtSketch<V>) -> Result<()> {
        if self.master_seed != other.master_seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.config != other.config {
            return Err(SketchError::ConfigMismatch {
                detail: format!("{:?} vs {:?}", self.config, other.config),
            });
        }
        self.metrics.record_merge_call();
        for (mine, theirs) in self.trials.iter_mut().zip(other.trials.iter()) {
            let report = mine.merge_from_reference(theirs)?;
            self.metrics.record_trial_merge(&report);
        }
        Ok(())
    }

    /// Absorb a party's **refreshed** snapshot when an older snapshot
    /// from the same party has already been merged into `self`.
    ///
    /// Sample sets, levels, and payloads merge exactly as
    /// [`GtSketch::merge_from`] — by the cumulative-stream argument in
    /// [`crate::delta`], having merged the stale snapshot earlier leaves
    /// the union's final sample bitwise identical to merging only the
    /// latest one. The item counters would double-count, though, so this
    /// variant debits the old snapshot's per-trial item counts
    /// (`old_trial_items`, read from
    /// [`CoordinatedTrial::items_observed`] before the refresh): the
    /// union's counters stay equal to "each party's latest snapshot
    /// merged exactly once", which the continuous-monitoring plane's
    /// canonical-bytes equivalence oracle relies on.
    ///
    /// # Errors
    /// Everything [`GtSketch::merge_from`] rejects, plus
    /// [`SketchError::ConfigMismatch`] if `old_trial_items` does not
    /// cover every trial.
    pub fn merge_refresh_from(&mut self, new: &GtSketch<V>, old_trial_items: &[u64]) -> Result<()> {
        if old_trial_items.len() != self.trials.len() {
            return Err(SketchError::ConfigMismatch {
                detail: format!(
                    "refresh carries {} old item counters for {} trials",
                    old_trial_items.len(),
                    self.trials.len()
                ),
            });
        }
        self.merge_from(new)?;
        for (trial, &old) in self.trials.iter_mut().zip(old_trial_items) {
            trial.debit_items(old);
        }
        Ok(())
    }

    /// Union of two sketches as a new sketch.
    pub fn merged(&self, other: &GtSketch<V>) -> Result<GtSketch<V>> {
        let mut out = self.clone();
        out.merge_from(other)?;
        Ok(out)
    }

    /// In-place counterpart of [`GtSketch::reassemble`] for one trial:
    /// reload trial `index` with transmitted state, reusing its sample
    /// storage (see [`CoordinatedTrial::reload`]). The referee's decode
    /// arena calls this once per wire trial to refill a pooled sketch
    /// without allocating.
    ///
    /// On `Err` the trial's state is unspecified; the sketch must be
    /// fully reloaded (or discarded) before use.
    ///
    /// # Errors
    /// [`SketchError::ConfigMismatch`] if `index` is out of range, plus
    /// everything [`CoordinatedTrial::from_parts`] rejects.
    pub fn reload_trial(
        &mut self,
        index: usize,
        level: u8,
        items_observed: u64,
        entries: impl IntoIterator<Item = (u64, V)>,
    ) -> Result<()> {
        let trial = self
            .trials
            .get_mut(index)
            .ok_or_else(|| SketchError::ConfigMismatch {
                detail: format!(
                    "trial index {index} out of range for {} trials",
                    self.config.trials()
                ),
            })?;
        trial.reload(level, items_observed, entries)
    }

    /// Reset every trial to the empty level-0 state, keeping the allocated
    /// sample storage.
    ///
    /// This is what makes pooled sketches reusable: `gt-store`'s scratch
    /// and hot-tier sketches are cleared and refilled for a different key
    /// instead of being rebuilt with [`GtSketch::new`] (which re-walks the
    /// whole seed schedule) or cloned (which re-allocates every sample
    /// table). A cleared sketch is bitwise-indistinguishable from a
    /// freshly constructed one with the same config and seed.
    pub fn clear(&mut self) {
        for trial in &mut self.trials {
            trial
                .reload(0, 0, std::iter::empty())
                .expect("reloading a trial to the empty level-0 state cannot fail");
        }
    }

    /// Raise every trial's sampling level to at least `other`'s, returning
    /// the number of per-trial level steps adopted.
    ///
    /// This is the level-adoption half of the concurrent writer protocol
    /// (see [`crate::concurrent`]): after propagating into the shared
    /// global sketch, a writer aligns its fresh local buffer to the
    /// global's levels so labels the global would reject anyway are
    /// filtered by the cheap below-level mask instead of occupying local
    /// sample slots. Coordination makes this lossless for the eventual
    /// union: a label discarded locally because `lvl(x) < adopted level`
    /// would be discarded by [`GtSketch::merge_from`]'s level alignment
    /// when the buffer reaches the global sketch, since global levels are
    /// monotone and already ≥ the adopted level.
    ///
    /// # Errors
    /// [`SketchError::SeedMismatch`] or [`SketchError::ConfigMismatch`] if
    /// the sketches are not coordinated (same rules as merging).
    pub fn align_levels_to(&mut self, other: &GtSketch<V>) -> Result<u64> {
        if self.master_seed != other.master_seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.config != other.config {
            return Err(SketchError::ConfigMismatch {
                detail: format!("{:?} vs {:?}", self.config, other.config),
            });
        }
        let mut adopted = 0u64;
        for (mine, theirs) in self.trials.iter_mut().zip(other.trials.iter()) {
            if theirs.level() > mine.level() {
                adopted += u64::from(theirs.level() - mine.level());
                mine.subsample_to_level(theirs.level());
            }
        }
        self.metrics.record_promotions(adopted);
        Ok(adopted)
    }

    /// Live observability counters for this sketch (see
    /// [`crate::metrics`]).
    pub fn metrics(&self) -> &SketchMetrics {
        &self.metrics
    }

    /// Point-in-time copy of the observability counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// The paper's headline object: an `(ε, δ)` distinct-count (F₀) sketch.
pub type DistinctSketch = GtSketch<()>;

impl DistinctSketch {
    /// Observe a label.
    #[inline]
    pub fn insert(&mut self, label: u64) {
        self.insert_with(label, ());
    }

    /// Observe every label from an iterator.
    ///
    /// Labels are gathered into an internal fixed-size stack buffer
    /// ([`INGEST_BUF`] entries) and each full buffer is driven through the
    /// batch-monomorphic kernel, so iterator callers get the same fast
    /// path as [`DistinctSketch::extend_slice`] without allocating. Per
    /// the coordination contract the resulting sketch state is
    /// bitwise-identical to inserting each label individually.
    pub fn extend_labels(&mut self, labels: impl IntoIterator<Item = u64>) {
        let mut tally = InsertTally::default();
        let mut buf = [0u64; INGEST_BUF];
        let mut len = 0usize;
        for label in labels {
            buf[len] = label;
            len += 1;
            if len == INGEST_BUF {
                self.ingest_slice(&buf, &mut tally);
                len = 0;
            }
        }
        if len > 0 {
            self.ingest_slice(&buf[..len], &mut tally);
        }
        self.metrics.record_insert_tally(&tally);
    }

    /// Observe a slice of labels through the batch-monomorphic kernel —
    /// the fastest bulk-ingest path (see [`GtSketch::insert_batch_with`]
    /// for the kernel description; experiment `e4` for the numbers).
    pub fn extend_slice(&mut self, labels: &[u64]) {
        let mut tally = InsertTally::default();
        self.ingest_slice(labels, &mut tally);
        self.metrics.record_insert_tally(&tally);
    }

    /// Observe a slice with the *pre-kernel* trial-major loop: plain
    /// per-item `insert` calls, interchanged so each trial sweeps the
    /// whole slice. Kept as the documented reference implementation the
    /// kernel is tested against, and as the `batched` contender in
    /// experiment `e4`; use [`DistinctSketch::extend_slice`] for real
    /// ingest.
    pub fn extend_slice_reference(&mut self, labels: &[u64]) {
        let mut tally = InsertTally::default();
        for trial in &mut self.trials {
            let level_before = trial.level();
            for &label in labels {
                tally.record(trial.insert(label, ()));
            }
            tally.promotions += u64::from(trial.level() - level_before);
        }
        self.metrics.record_insert_tally(&tally);
    }

    /// Trial-major kernel sweep without the metrics flush (callers batch
    /// the flush across multiple slices).
    fn ingest_slice(&mut self, labels: &[u64], tally: &mut InsertTally) {
        for trial in &mut self.trials {
            trial.extend_labels_kernel(labels, tally);
        }
    }
}

/// Stack-buffer length used by [`DistinctSketch::extend_labels`] to feed
/// iterator input through the batch kernel (8 KiB of labels).
pub const INGEST_BUF: usize = 1024;

/// Outcome statistics from inserting a batch (diagnostics for tuning).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertStats {
    /// Items that entered at least one trial's sample.
    pub sampled: u64,
    /// Items that were duplicates in every trial they qualified for.
    pub duplicates: u64,
    /// Items below level in every trial.
    pub below_level: u64,
}

impl DistinctSketch {
    /// Insert a batch and report classification statistics (used by the
    /// ingest benchmarks to show where time goes).
    pub fn extend_labels_stats(&mut self, labels: impl IntoIterator<Item = u64>) -> InsertStats {
        let mut stats = InsertStats::default();
        let mut tally = InsertTally::default();
        for label in labels {
            let mut any_sampled = false;
            let mut any_dup = false;
            for trial in &mut self.trials {
                let level_before = trial.level();
                let outcome = trial.insert(label, ());
                tally.record(outcome);
                tally.promotions += u64::from(trial.level() - level_before);
                match outcome {
                    TrialInsert::Sampled | TrialInsert::SampledAfterPromotion => any_sampled = true,
                    TrialInsert::Duplicate => any_dup = true,
                    TrialInsert::BelowLevel | TrialInsert::EvictedByPromotion => {}
                }
            }
            if any_sampled {
                stats.sampled += 1;
            } else if any_dup {
                stats.duplicates += 1;
            } else {
                stats.below_level += 1;
            }
        }
        self.metrics.record_insert_tally(&tally);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(eps: f64, delta: f64) -> SketchConfig {
        SketchConfig::new(eps, delta).unwrap()
    }

    fn labels(n: u64, salt: u64) -> impl Iterator<Item = u64> {
        (0..n)
            .map(move |i| gt_hash::fold61(i.wrapping_add(salt.wrapping_mul(0x5851_F42D_4C95_7F2D))))
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = DistinctSketch::new(&cfg(0.1, 0.1), 1);
        assert_eq!(s.estimate_distinct().value, 0.0);
        assert_eq!(s.items_observed(), 0);
        assert_eq!(s.max_level(), 0);
    }

    #[test]
    fn small_cardinalities_are_exact() {
        let mut s = DistinctSketch::new(&cfg(0.1, 0.1), 2);
        s.extend_labels(labels(100, 0));
        assert_eq!(s.estimate_distinct().value, 100.0);
    }

    #[test]
    fn estimate_within_epsilon_for_large_sets() {
        let mut s = DistinctSketch::new(&cfg(0.1, 0.05), 3);
        let n = 50_000;
        s.extend_labels(labels(n, 1));
        let est = s.estimate_distinct();
        let rel = (est.value - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "rel err {rel}");
        assert!(est.lower_bound() <= n as f64 && n as f64 <= est.upper_bound());
    }

    #[test]
    fn duplicates_are_free() {
        let mut once = DistinctSketch::new(&cfg(0.1, 0.1), 4);
        let mut thrice = DistinctSketch::new(&cfg(0.1, 0.1), 4);
        let v: Vec<u64> = labels(10_000, 2).collect();
        once.extend_labels(v.iter().copied());
        for _ in 0..3 {
            thrice.extend_labels(v.iter().copied());
        }
        assert_eq!(
            once.estimate_distinct().value,
            thrice.estimate_distinct().value
        );
        assert_eq!(once.sample_entries(), thrice.sample_entries());
    }

    #[test]
    fn merge_matches_single_observer() {
        let config = cfg(0.1, 0.1);
        let mut a = DistinctSketch::new(&config, 5);
        let mut b = DistinctSketch::new(&config, 5);
        let mut whole = DistinctSketch::new(&config, 5);
        let va: Vec<u64> = labels(20_000, 3).collect();
        let vb: Vec<u64> = labels(20_000, 4).collect();
        a.extend_labels(va.iter().copied());
        b.extend_labels(vb.iter().copied());
        whole.extend_labels(va.iter().copied());
        whole.extend_labels(vb.iter().copied());
        let union = a.merged(&b).unwrap();
        assert_eq!(
            union.estimate_distinct().value,
            whole.estimate_distinct().value
        );
        assert_eq!(union.sample_entries(), whole.sample_entries());
        assert_eq!(union.max_level(), whole.max_level());
    }

    #[test]
    fn merge_is_commutative() {
        let config = cfg(0.15, 0.2);
        let mut a = DistinctSketch::new(&config, 6);
        let mut b = DistinctSketch::new(&config, 6);
        a.extend_labels(labels(5_000, 5));
        b.extend_labels(labels(5_000, 6));
        let ab = a.merged(&b).unwrap();
        let ba = b.merged(&a).unwrap();
        assert_eq!(ab.estimate_distinct().value, ba.estimate_distinct().value);
        assert_eq!(ab.sample_entries(), ba.sample_entries());
    }

    #[test]
    fn merge_is_idempotent() {
        let config = cfg(0.1, 0.1);
        let mut a = DistinctSketch::new(&config, 7);
        a.extend_labels(labels(8_000, 7));
        let aa = a.merged(&a).unwrap();
        assert_eq!(aa.estimate_distinct().value, a.estimate_distinct().value);
        assert_eq!(aa.sample_entries(), a.sample_entries());
    }

    #[test]
    fn merge_rejects_different_seeds_and_configs() {
        let config = cfg(0.1, 0.1);
        let a = DistinctSketch::new(&config, 1);
        let b = DistinctSketch::new(&config, 2);
        assert_eq!(a.merged(&b).unwrap_err(), SketchError::SeedMismatch);
        let c = DistinctSketch::new(&cfg(0.2, 0.1), 1);
        assert!(matches!(
            a.merged(&c).unwrap_err(),
            SketchError::ConfigMismatch { .. }
        ));
    }

    #[test]
    fn align_levels_then_merge_matches_single_observer() {
        // A writer that adopts the global's levels before buffering more
        // labels must still produce the exact single-observer union: the
        // labels its aligned buffer rejects as below-level are precisely
        // the ones merge-time level alignment would have discarded.
        let config = cfg(0.1, 0.1);
        let va: Vec<u64> = labels(120_000, 50).collect();
        let vb: Vec<u64> = labels(40_000, 51).collect();

        let mut global = DistinctSketch::new(&config, 52);
        global.extend_labels(va.iter().copied());
        assert!(global.max_level() > 0, "need promotions for this test");

        let mut aligned = DistinctSketch::new(&config, 52);
        let adopted = aligned.align_levels_to(&global).unwrap();
        assert!(adopted > 0);
        assert_eq!(aligned.max_level(), global.max_level());
        aligned.extend_labels(vb.iter().copied());
        global.merge_from(&aligned).unwrap();

        let mut whole = DistinctSketch::new(&config, 52);
        whole.extend_labels(va.iter().copied());
        whole.extend_labels(vb.iter().copied());

        let state = |s: &DistinctSketch| -> Vec<(u8, u64, std::collections::BTreeSet<u64>)> {
            s.trials()
                .iter()
                .map(|t| {
                    (
                        t.level(),
                        t.items_observed(),
                        t.sample_iter().map(|(k, _)| k).collect(),
                    )
                })
                .collect()
        };
        assert_eq!(state(&global), state(&whole));

        // Alignment is coordination-checked like merging.
        let mut stranger = DistinctSketch::new(&config, 99);
        assert_eq!(
            stranger.align_levels_to(&global).unwrap_err(),
            SketchError::SeedMismatch
        );
    }

    #[test]
    fn insert_hashed_accepts_arbitrary_types() {
        let mut s = DistinctSketch::new(&cfg(0.1, 0.1), 8);
        s.insert_hashed(&"alpha", ());
        s.insert_hashed(&"beta", ());
        s.insert_hashed(&"alpha", ());
        assert_eq!(s.estimate_distinct().value, 2.0);
    }

    #[test]
    fn space_is_bounded_by_config() {
        let config = cfg(0.1, 0.05);
        let mut s = DistinctSketch::new(&config, 9);
        s.extend_labels(labels(200_000, 8));
        assert!(s.sample_entries() <= config.max_sample_entries());
        // Heap bytes: trials × table(2c rounded up) × 8 bytes.
        assert!(
            s.heap_bytes() <= config.trials() * (2 * config.capacity()).next_power_of_two() * 8
        );
    }

    #[test]
    fn extend_stats_classifies_items() {
        let mut s = DistinctSketch::new(&cfg(0.3, 0.3), 10);
        let v: Vec<u64> = labels(100, 9).collect();
        let first = s.extend_labels_stats(v.iter().copied());
        assert_eq!(first.sampled, 100);
        let second = s.extend_labels_stats(v.iter().copied());
        assert_eq!(second.sampled, 0);
        assert_eq!(second.duplicates + second.below_level, 100);
    }

    #[test]
    fn batched_ingest_is_identical_to_per_item() {
        let config = cfg(0.2, 0.2);
        let data: Vec<u64> = labels(30_000, 11).collect();
        let mut per_item = DistinctSketch::new(&config, 12);
        per_item.extend_labels(data.iter().copied());
        let mut batched = DistinctSketch::new(&config, 12);
        batched.extend_slice(&data);
        let state = |s: &DistinctSketch| -> Vec<(u8, std::collections::BTreeSet<u64>)> {
            s.trials()
                .iter()
                .map(|t| (t.level(), t.sample_iter().map(|(k, _)| k).collect()))
                .collect()
        };
        assert_eq!(state(&batched), state(&per_item));
        assert_eq!(batched.items_observed(), per_item.items_observed());

        let mut pairs = GtSketch::<u64>::new(&config, 12);
        let items: Vec<(u64, u64)> = data.iter().map(|&l| (l, 1)).collect();
        pairs.insert_batch_with(&items);
        assert_eq!(
            pairs.estimate_distinct().value,
            per_item.estimate_distinct().value
        );
    }

    #[test]
    fn every_ingest_path_agrees_on_state_and_metrics() {
        // The kernel, the reference trial-major loop, the buffered
        // iterator path, and plain per-item inserts must all leave the
        // sketch in bitwise-identical state AND report identical metric
        // snapshots. Length > INGEST_BUF exercises the buffer flush.
        let config = cfg(0.2, 0.2);
        let data: Vec<u64> = labels(3 * INGEST_BUF as u64 + 17, 40).collect();

        let mut per_item = DistinctSketch::new(&config, 41);
        for &l in &data {
            per_item.insert(l);
        }
        let mut kernel = DistinctSketch::new(&config, 41);
        kernel.extend_slice(&data);
        let mut reference = DistinctSketch::new(&config, 41);
        reference.extend_slice_reference(&data);
        let mut buffered = DistinctSketch::new(&config, 41);
        buffered.extend_labels(data.iter().copied());

        let state = |s: &DistinctSketch| -> Vec<(u8, u64, std::collections::BTreeSet<u64>)> {
            s.trials()
                .iter()
                .map(|t| {
                    (
                        t.level(),
                        t.items_observed(),
                        t.sample_iter().map(|(k, _)| k).collect(),
                    )
                })
                .collect()
        };
        let want_state = state(&per_item);
        let want_metrics = per_item.metrics_snapshot();
        for (name, s) in [
            ("kernel", &kernel),
            ("reference", &reference),
            ("buffered", &buffered),
        ] {
            assert_eq!(state(s), want_state, "{name} state diverged");
            assert_eq!(
                s.metrics_snapshot(),
                want_metrics,
                "{name} metrics diverged"
            );
        }
    }

    #[test]
    fn batch_merging_matches_per_item_merging() {
        let config = cfg(0.2, 0.2);
        let items: Vec<(u64, u64)> = labels(4_000, 42).map(|l| (l, l ^ 0x1234)).collect();
        // Two passes with different payloads so duplicates must reconcile.
        let second: Vec<(u64, u64)> = items.iter().map(|&(l, p)| (l, p ^ 0xFFFF)).collect();

        let mut per_item = GtSketch::<u64>::new(&config, 43);
        for &(l, p) in items.iter().chain(second.iter()) {
            per_item.insert_merging_with(l, p);
        }
        let mut batched = GtSketch::<u64>::new(&config, 43);
        batched.insert_batch_merging_with(&items);
        batched.insert_batch_merging_with(&second);

        let state = |s: &GtSketch<u64>| -> Vec<(u8, std::collections::BTreeMap<u64, u64>)> {
            s.trials()
                .iter()
                .map(|t| (t.level(), t.sample_iter().collect()))
                .collect()
        };
        assert_eq!(state(&batched), state(&per_item));
        assert_eq!(batched.metrics_snapshot(), per_item.metrics_snapshot());
    }

    #[test]
    fn union_reconciles_payloads_like_a_single_observer() {
        // Regression for the payload-merge asymmetry: u64's keep-first
        // `merge` is non-commutative, so this fails if the local duplicate
        // path and the union path reconcile in different argument orders.
        let config = cfg(0.1, 0.1);
        let seed = 21;
        let first: Vec<(u64, u64)> = labels(2_000, 20).map(|l| (l, l ^ 0xAAAA)).collect();
        let second: Vec<(u64, u64)> = first.iter().map(|&(l, _)| (l, l ^ 0x5555)).collect();

        // One observer sees both passes over the labels.
        let mut single = GtSketch::<u64>::new(&config, seed);
        for &(l, p) in first.iter().chain(second.iter()) {
            single.insert_merging_with(l, p);
        }

        // Two parties split the passes; the referee unions them.
        let mut a = GtSketch::<u64>::new(&config, seed);
        for &(l, p) in &first {
            a.insert_merging_with(l, p);
        }
        let mut b = GtSketch::<u64>::new(&config, seed);
        for &(l, p) in &second {
            b.insert_merging_with(l, p);
        }
        let union = a.merged(&b).unwrap();

        // Identical state means identical levels AND identical payloads —
        // union-equals-single-observer for payloads, not just labels.
        let state = |s: &GtSketch<u64>| -> Vec<(u8, std::collections::BTreeMap<u64, u64>)> {
            s.trials()
                .iter()
                .map(|t| (t.level(), t.sample_iter().collect()))
                .collect()
        };
        assert_eq!(state(&union), state(&single));
        assert_eq!(union.items_observed(), single.items_observed());
    }

    #[test]
    fn metrics_track_inserts_promotions_and_merges() {
        let config = cfg(0.2, 0.2);
        let trials = config.trials() as u64;
        let v: Vec<u64> = labels(1_000, 30).collect();

        let mut a = DistinctSketch::new(&config, 31);
        a.extend_slice(&v);
        let snap = a.metrics_snapshot();
        assert_eq!(snap.trial_inserts(), 1_000 * trials);
        assert!(snap.inserts_sampled > 0);

        // A second pass is all duplicates / below-level.
        a.extend_labels(v.iter().copied());
        let snap = a.metrics_snapshot();
        assert_eq!(snap.trial_inserts(), 2_000 * trials);
        assert!(snap.inserts_duplicate > 0);

        // Promotions recorded must match the levels actually reached.
        let mut big = DistinctSketch::new(&config, 32);
        big.extend_labels(labels(100_000, 33));
        let total_levels: u64 = big.trials().iter().map(|t| u64::from(t.level())).sum();
        assert!(total_levels > 0, "100k labels must promote somewhere");
        assert_eq!(big.metrics_snapshot().level_promotions, total_levels);

        // Union accounting.
        let mut b = DistinctSketch::new(&config, 31);
        b.extend_labels(labels(1_000, 34));
        let before = a.metrics_snapshot();
        a.merge_from(&b).unwrap();
        let after = a.metrics_snapshot();
        assert_eq!(after.merge_calls, before.merge_calls + 1);
        assert!(after.merge_entries_absorbed > 0);

        // The donor sketch's counters are untouched by being read from.
        assert_eq!(b.metrics_snapshot().merge_calls, 0);
    }

    #[test]
    fn metrics_count_local_reconciliations() {
        let config = cfg(0.2, 0.2);
        let mut s = GtSketch::<u64>::new(&config, 35);
        let label = gt_hash::fold61(7);
        s.insert_merging_with(label, 1);
        assert_eq!(s.metrics_snapshot().local_reconciliations, 0);
        s.insert_merging_with(label, 2);
        let snap = s.metrics_snapshot();
        // The duplicate reconciles once per trial (level 0 everywhere).
        assert_eq!(snap.local_reconciliations, config.trials() as u64);
        assert_eq!(snap.reconciliations(), snap.local_reconciliations);
    }

    #[test]
    fn reference_union_matches_kernel_union_bitwise() {
        let config = cfg(0.1, 0.1);
        let mut a = GtSketch::<u64>::new(&config, 60);
        let mut b = GtSketch::<u64>::new(&config, 60);
        for (i, l) in labels(30_000, 61).enumerate() {
            a.insert_merging_with(l, i as u64);
        }
        for (i, l) in labels(30_000, 62).enumerate() {
            b.insert_merging_with(l, (i as u64) ^ 0xBEEF);
        }
        let mut via_kernel = a.clone();
        via_kernel.merge_from(&b).unwrap();
        let mut via_reference = a.clone();
        via_reference.merge_from_reference(&b).unwrap();
        let state = |s: &GtSketch<u64>| -> Vec<(u8, u64, std::collections::BTreeMap<u64, u64>)> {
            s.trials()
                .iter()
                .map(|t| (t.level(), t.items_observed(), t.sample_iter().collect()))
                .collect()
        };
        assert_eq!(state(&via_kernel), state(&via_reference));
        assert_eq!(
            via_kernel.metrics_snapshot(),
            via_reference.metrics_snapshot(),
            "merge metrics must agree entry for entry"
        );
    }

    #[test]
    fn reload_trial_refills_in_place() {
        let config = cfg(0.2, 0.2);
        let mut donor = DistinctSketch::new(&config, 70);
        donor.extend_labels(labels(5_000, 71));
        let states: Vec<TrialState<()>> = donor
            .trials()
            .iter()
            .map(|t| (t.level(), t.items_observed(), t.sample_iter().collect()))
            .collect();
        let reassembled = DistinctSketch::reassemble(&config, 70, states.clone()).unwrap();
        let mut pooled = DistinctSketch::new(&config, 70);
        pooled.extend_labels(labels(900, 72)); // dirty the pooled storage
        for (i, (level, items, entries)) in states.into_iter().enumerate() {
            pooled.reload_trial(i, level, items, entries).unwrap();
        }
        let state = |s: &DistinctSketch| -> Vec<(u8, u64, std::collections::BTreeSet<u64>)> {
            s.trials()
                .iter()
                .map(|t| {
                    (
                        t.level(),
                        t.items_observed(),
                        t.sample_iter().map(|(k, _)| k).collect(),
                    )
                })
                .collect()
        };
        assert_eq!(state(&pooled), state(&reassembled));
        // Out-of-range index is an error, not a panic.
        assert!(matches!(
            pooled.reload_trial(usize::MAX, 0, 0, vec![]),
            Err(SketchError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn clear_restores_the_freshly_built_state() {
        let config = cfg(0.2, 0.2);
        let fresh = DistinctSketch::new(&config, 73);
        let mut used = DistinctSketch::new(&config, 73);
        used.extend_labels(labels(5_000, 74));
        assert!(used.sample_entries() > 0 && used.max_level() > 0);
        used.clear();
        let state = |s: &DistinctSketch| -> Vec<(u8, u64, usize)> {
            s.trials()
                .iter()
                .map(|t| (t.level(), t.items_observed(), t.sample_len()))
                .collect()
        };
        assert_eq!(state(&used), state(&fresh));
        assert_eq!(used.items_observed(), 0);
        // A cleared sketch behaves exactly like a fresh one from here on.
        let mut refilled = fresh.clone();
        refilled.extend_labels(labels(800, 75));
        used.extend_labels(labels(800, 75));
        assert_eq!(state(&used), state(&refilled));
        assert_eq!(
            used.estimate_distinct().value,
            refilled.estimate_distinct().value
        );
    }

    #[test]
    fn items_observed_counts_everything() {
        let mut s = DistinctSketch::new(&cfg(0.2, 0.2), 11);
        s.extend_labels(labels(50, 10));
        s.extend_labels(labels(50, 10));
        assert_eq!(s.items_observed(), 100);
    }
}
