//! Two-sketch estimators: intersection size, set difference, and Jaccard
//! similarity between the distinct-label sets of two streams.
//!
//! This is where *coordinated* sampling pays off over independent
//! sampling: because both sketches assign every label the same level,
//! aligning two trials to a common level `l* = max(l_a, l_b)` yields two
//! Bernoulli samples drawn with the **same** coin flips. Sampled-set
//! intersections therefore estimate true intersections
//! (`|S_a ∩ S_b| · 2^{l*}` is unbiased for `|A ∩ B|`), which is impossible
//! with independently sampled streams (the overlap of two independent
//! samples of rate `q` has expectation `q²|A∩B|` — quadratically fewer
//! witnesses). The same alignment gives `A \ B` and Jaccard estimates.
//! KMV/Theta sketches inherit exactly this trick; experiment E12 measures
//! the accuracy.

use crate::error::{Result, SketchError};
use crate::estimate::median_f64;
use crate::sketch::GtSketch;
use crate::trial::Payload;

/// Point estimates of the set relationships between two streams' distinct
/// label sets, with the per-trial detail used to produce them.
#[derive(Clone, Debug, PartialEq)]
pub struct SimilarityEstimate {
    /// Estimated `|A ∩ B|`.
    pub intersection: f64,
    /// Estimated `|A ∪ B|`.
    pub union: f64,
    /// Estimated `|A \ B|`.
    pub difference_a_minus_b: f64,
    /// Estimated `|B \ A|`.
    pub difference_b_minus_a: f64,
    /// Estimated Jaccard similarity `|A ∩ B| / |A ∪ B|` (ratio estimator,
    /// computed per trial then median'd — not the ratio of the medians).
    pub jaccard: f64,
}

/// Estimate set relationships between the distinct-label sets of two
/// coordinated sketches.
///
/// ```
/// use gt_core::{similarity, DistinctSketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut a = DistinctSketch::new(&cfg, 7);
/// let mut b = DistinctSketch::new(&cfg, 7); // same seed = coordinated
/// a.extend_labels(0..600);
/// b.extend_labels(300..900);
/// let sim = similarity(&a, &b).unwrap();
/// assert_eq!(sim.intersection, 300.0); // exact below capacity
/// assert!((sim.jaccard - 1.0 / 3.0).abs() < 1e-9);
/// ```
///
/// # Errors
/// [`SketchError::SeedMismatch`] / [`SketchError::ConfigMismatch`] when the
/// sketches are not coordinated (different seeds or shapes).
pub fn similarity<V: Payload>(a: &GtSketch<V>, b: &GtSketch<V>) -> Result<SimilarityEstimate> {
    if a.master_seed() != b.master_seed() {
        return Err(SketchError::SeedMismatch);
    }
    if a.config() != b.config() {
        return Err(SketchError::ConfigMismatch {
            detail: format!("{:?} vs {:?}", a.config(), b.config()),
        });
    }
    let trials = a.trials().len();
    let mut inter = Vec::with_capacity(trials);
    let mut union = Vec::with_capacity(trials);
    let mut diff_ab = Vec::with_capacity(trials);
    let mut diff_ba = Vec::with_capacity(trials);
    let mut jaccard = Vec::with_capacity(trials);

    for (ta, tb) in a.trials().iter().zip(b.trials().iter()) {
        // Align both trials to the common level, cloning only a trial
        // that actually needs subsampling (equal levels are the common
        // case and cost nothing).
        let l = ta.level().max(tb.level());
        fn align<V: Payload>(
            t: &crate::trial::CoordinatedTrial<V>,
            l: u8,
        ) -> std::borrow::Cow<'_, crate::trial::CoordinatedTrial<V>> {
            if t.level() < l {
                let mut owned = t.clone();
                owned.subsample_to_level(l);
                std::borrow::Cow::Owned(owned)
            } else {
                std::borrow::Cow::Borrowed(t)
            }
        }
        let ta = align(ta, l);
        let tb = align(tb, l);
        let scale = 2f64.powi(l as i32);

        let mut n_inter = 0usize;
        for (label, _) in ta.sample_iter() {
            if tb.contains_label(label) {
                n_inter += 1;
            }
        }
        let n_a = ta.sample_len();
        let n_b = tb.sample_len();
        let n_union = n_a + n_b - n_inter;

        inter.push(n_inter as f64 * scale);
        union.push(n_union as f64 * scale);
        diff_ab.push((n_a - n_inter) as f64 * scale);
        diff_ba.push((n_b - n_inter) as f64 * scale);
        if n_union > 0 {
            jaccard.push(n_inter as f64 / n_union as f64);
        }
    }

    Ok(SimilarityEstimate {
        intersection: median_f64(&mut inter),
        union: median_f64(&mut union),
        difference_a_minus_b: median_f64(&mut diff_ab),
        difference_b_minus_a: median_f64(&mut diff_ba),
        jaccard: if jaccard.is_empty() {
            0.0
        } else {
            median_f64(&mut jaccard)
        },
    })
}

/// Pairwise Jaccard similarities among `k` coordinated sketches, as a
/// `k × k` symmetric matrix (diagonal 1.0 for non-empty sketches).
///
/// Useful for clustering streams by content (which monitors see the same
/// traffic?). Cost: `O(k² · trials · capacity)` at the referee.
///
/// # Errors
/// Fails on the first uncoordinated pair encountered.
pub fn jaccard_matrix<V: Payload>(sketches: &[&GtSketch<V>]) -> Result<Vec<Vec<f64>>> {
    let k = sketches.len();
    let mut matrix = vec![vec![0.0; k]; k];
    for i in 0..k {
        matrix[i][i] = if sketches[i].sample_entries() > 0 {
            1.0
        } else {
            0.0
        };
        for j in (i + 1)..k {
            let sim = similarity(sketches[i], sketches[j])?;
            matrix[i][j] = sim.jaccard;
            matrix[j][i] = sim.jaccard;
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SketchConfig;
    use crate::sketch::DistinctSketch;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn sketch_of(range: std::ops::Range<u64>, seed: u64) -> DistinctSketch {
        let mut s = DistinctSketch::new(&cfg(), seed);
        s.extend_labels(range.map(gt_hash::fold61));
        s
    }

    #[test]
    fn disjoint_sets_have_zero_intersection() {
        let a = sketch_of(0..200, 1);
        let b = sketch_of(200..400, 1);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.intersection, 0.0);
        assert_eq!(sim.jaccard, 0.0);
        assert_eq!(sim.union, 400.0);
        assert_eq!(sim.difference_a_minus_b, 200.0);
        assert_eq!(sim.difference_b_minus_a, 200.0);
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let a = sketch_of(0..500, 2);
        let b = sketch_of(0..500, 2);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.jaccard, 1.0);
        assert_eq!(sim.intersection, 500.0);
        assert_eq!(sim.union, 500.0);
        assert_eq!(sim.difference_a_minus_b, 0.0);
    }

    #[test]
    fn half_overlap_at_scale() {
        // A = [0, 60k), B = [30k, 90k): |A∩B| = 30k, |A∪B| = 90k, J = 1/3.
        let a = sketch_of(0..60_000, 3);
        let b = sketch_of(30_000..90_000, 3);
        let sim = similarity(&a, &b).unwrap();
        let rel = |est: f64, truth: f64| (est - truth).abs() / truth;
        assert!(
            rel(sim.intersection, 30_000.0) < 0.25,
            "∩ {}",
            sim.intersection
        );
        assert!(rel(sim.union, 90_000.0) < 0.15, "∪ {}", sim.union);
        assert!((sim.jaccard - 1.0 / 3.0).abs() < 0.1, "J {}", sim.jaccard);
        assert!(
            rel(sim.difference_a_minus_b, 30_000.0) < 0.35,
            "A∖B {}",
            sim.difference_a_minus_b
        );
    }

    #[test]
    fn union_estimate_agrees_with_merge_estimate() {
        let a = sketch_of(0..40_000, 4);
        let b = sketch_of(20_000..70_000, 4);
        let sim = similarity(&a, &b).unwrap();
        let merged = a.merged(&b).unwrap().estimate_distinct().value;
        let rel = (sim.union - merged).abs() / merged;
        assert!(
            rel < 0.1,
            "similarity union {} vs merge {merged}",
            sim.union
        );
    }

    #[test]
    fn uncoordinated_sketches_are_rejected() {
        let a = sketch_of(0..100, 1);
        let b = sketch_of(0..100, 2);
        assert_eq!(similarity(&a, &b).unwrap_err(), SketchError::SeedMismatch);
        let c = {
            let mut s = DistinctSketch::new(&SketchConfig::new(0.2, 0.1).unwrap(), 1);
            s.extend_labels(0..10);
            s
        };
        assert!(matches!(
            similarity(&a, &c).unwrap_err(),
            SketchError::ConfigMismatch { .. }
        ));
    }

    #[test]
    fn empty_vs_empty() {
        let a = DistinctSketch::new(&cfg(), 9);
        let b = DistinctSketch::new(&cfg(), 9);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.intersection, 0.0);
        assert_eq!(sim.union, 0.0);
        assert_eq!(sim.jaccard, 0.0);
    }

    #[test]
    fn jaccard_matrix_is_symmetric_with_unit_diagonal() {
        let a = sketch_of(0..1_000, 7);
        let b = sketch_of(500..1_500, 7);
        let c = sketch_of(5_000..6_000, 7);
        let m = jaccard_matrix(&[&a, &b, &c]).unwrap();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, m[j][i]);
            }
        }
        assert!((m[0][1] - 1.0 / 3.0).abs() < 0.05, "J(a,b) {}", m[0][1]);
        assert_eq!(m[0][2], 0.0);
        assert_eq!(m[1][2], 0.0);
        // Empty sketch gets a 0 diagonal.
        let empty = DistinctSketch::new(&cfg(), 7);
        let m = jaccard_matrix(&[&empty]).unwrap();
        assert_eq!(m[0][0], 0.0);
    }

    #[test]
    fn jaccard_matrix_rejects_uncoordinated_members() {
        let a = sketch_of(0..100, 1);
        let b = sketch_of(0..100, 2);
        assert!(jaccard_matrix(&[&a, &b]).is_err());
    }

    #[test]
    fn empty_vs_nonempty() {
        let a = DistinctSketch::new(&cfg(), 9);
        let b = sketch_of(0..300, 9);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.intersection, 0.0);
        assert_eq!(sim.union, 300.0);
        assert_eq!(sim.difference_b_minus_a, 300.0);
    }
}
