//! Two-sketch estimators: intersection size, set difference, and Jaccard
//! similarity between the distinct-label sets of two streams.
//!
//! This is where *coordinated* sampling pays off over independent
//! sampling: because both sketches assign every label the same level,
//! aligning two trials to a common level `l* = max(l_a, l_b)` yields two
//! Bernoulli samples drawn with the **same** coin flips. Sampled-set
//! intersections therefore estimate true intersections
//! (`|S_a ∩ S_b| · 2^{l*}` is unbiased for `|A ∩ B|`), which is impossible
//! with independently sampled streams (the overlap of two independent
//! samples of rate `q` has expectation `q²|A∩B|` — quadratically fewer
//! witnesses). The same alignment gives `A \ B` and Jaccard estimates.
//! KMV/Theta sketches inherit exactly this trick; experiment E12 measures
//! the accuracy.

use crate::error::Result;
use crate::estimate::median_f64;
use crate::expr::{ExprContext, SetExpr};
use crate::sketch::GtSketch;
use crate::trial::Payload;

/// Point estimates of the set relationships between two streams' distinct
/// label sets, with the per-trial detail used to produce them.
#[derive(Clone, Debug, PartialEq)]
pub struct SimilarityEstimate {
    /// Estimated `|A ∩ B|`.
    pub intersection: f64,
    /// Estimated `|A ∪ B|`.
    pub union: f64,
    /// Estimated `|A \ B|`.
    pub difference_a_minus_b: f64,
    /// Estimated `|B \ A|`.
    pub difference_b_minus_a: f64,
    /// Estimated Jaccard similarity `|A ∩ B| / |A ∪ B|` (ratio estimator,
    /// computed per trial then median'd — not the ratio of the medians).
    ///
    /// Convention: a trial whose aligned union sample is empty
    /// contributes `0.0` to the median instead of being dropped, so every
    /// trial votes and the estimate stays consistent with the per-trial
    /// `union`/`intersection` medians (see
    /// [`crate::expr::JaccardEstimate`]).
    pub jaccard: f64,
}

/// Estimate set relationships between the distinct-label sets of two
/// coordinated sketches.
///
/// ```
/// use gt_core::{similarity, DistinctSketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut a = DistinctSketch::new(&cfg, 7);
/// let mut b = DistinctSketch::new(&cfg, 7); // same seed = coordinated
/// a.extend_labels(0..600);
/// b.extend_labels(300..900);
/// let sim = similarity(&a, &b).unwrap();
/// assert_eq!(sim.intersection, 300.0); // exact below capacity
/// assert!((sim.jaccard - 1.0 / 3.0).abs() < 1e-9);
/// ```
///
/// # Errors
/// [`SketchError::SeedMismatch`](crate::error::SketchError::SeedMismatch) /
/// [`SketchError::ConfigMismatch`](crate::error::SketchError::ConfigMismatch)
/// when the sketches are not coordinated (different seeds or shapes).
pub fn similarity<V: Payload>(a: &GtSketch<V>, b: &GtSketch<V>) -> Result<SimilarityEstimate> {
    let ctx = ExprContext::new(&[a, b])?;
    pairwise(&ctx, 0, 1)
}

/// The depth-1 special case of the expression engine: all five pairwise
/// quantities for operands `i` and `j` of one shared [`ExprContext`].
///
/// Every expression references exactly `{i, j}`, so each trial aligns to
/// `max(level_i, level_j)` — the same rule the pre-engine implementation
/// applied — and the per-trial counts (hence the medians) are
/// value-identical to it.
fn pairwise<V: Payload>(
    ctx: &ExprContext<'_, V>,
    i: usize,
    j: usize,
) -> Result<SimilarityEstimate> {
    let (a, b) = (SetExpr::leaf(i), SetExpr::leaf(j));
    let mut inter = ctx.per_trial_estimates(&a.clone().intersect(b.clone()))?;
    let mut union = ctx.per_trial_estimates(&a.clone().union(b.clone()))?;
    let mut diff_ab = ctx.per_trial_estimates(&a.clone().difference(b.clone()))?;
    let mut diff_ba = ctx.per_trial_estimates(&b.clone().difference(a.clone()))?;
    let jaccard = ctx.eval_jaccard(&a, &b)?;
    Ok(SimilarityEstimate {
        intersection: median_f64(&mut inter),
        union: median_f64(&mut union),
        difference_a_minus_b: median_f64(&mut diff_ab),
        difference_b_minus_a: median_f64(&mut diff_ba),
        jaccard: jaccard.jaccard,
    })
}

/// Pairwise Jaccard similarities among `k` coordinated sketches, as a
/// `k × k` symmetric matrix (diagonal 1.0 for non-empty sketches).
///
/// Useful for clustering streams by content (which monitors see the same
/// traffic?). Runs on one shared [`ExprContext`], so each sketch's trials
/// are scanned and sorted **once** — the per-pair work is just the
/// common-level filter and sorted-merge counting, not the clone +
/// re-subsample per pair the pre-engine implementation paid. Results are
/// value-identical to calling [`similarity`] per pair (each pair still
/// aligns to its own `max(l_i, l_j)` per trial).
///
/// # Errors
/// Fails when any pair of members is uncoordinated.
pub fn jaccard_matrix<V: Payload>(sketches: &[&GtSketch<V>]) -> Result<Vec<Vec<f64>>> {
    let k = sketches.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    let ctx = ExprContext::new(sketches)?;
    let mut matrix = vec![vec![0.0; k]; k];
    // Indexed loops: each pair writes the two mirrored cells (i, j) and
    // (j, i), which no row iterator can borrow at once.
    #[allow(clippy::needless_range_loop)]
    for i in 0..k {
        matrix[i][i] = if sketches[i].sample_entries() > 0 {
            1.0
        } else {
            0.0
        };
        for j in i + 1..k {
            let jac = ctx
                .eval_jaccard(&SetExpr::leaf(i), &SetExpr::leaf(j))?
                .jaccard;
            matrix[i][j] = jac;
            matrix[j][i] = jac;
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SketchError;
    use crate::params::SketchConfig;
    use crate::sketch::DistinctSketch;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn sketch_of(range: std::ops::Range<u64>, seed: u64) -> DistinctSketch {
        let mut s = DistinctSketch::new(&cfg(), seed);
        s.extend_labels(range.map(gt_hash::fold61));
        s
    }

    #[test]
    fn disjoint_sets_have_zero_intersection() {
        let a = sketch_of(0..200, 1);
        let b = sketch_of(200..400, 1);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.intersection, 0.0);
        assert_eq!(sim.jaccard, 0.0);
        assert_eq!(sim.union, 400.0);
        assert_eq!(sim.difference_a_minus_b, 200.0);
        assert_eq!(sim.difference_b_minus_a, 200.0);
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let a = sketch_of(0..500, 2);
        let b = sketch_of(0..500, 2);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.jaccard, 1.0);
        assert_eq!(sim.intersection, 500.0);
        assert_eq!(sim.union, 500.0);
        assert_eq!(sim.difference_a_minus_b, 0.0);
    }

    #[test]
    fn half_overlap_at_scale() {
        // A = [0, 60k), B = [30k, 90k): |A∩B| = 30k, |A∪B| = 90k, J = 1/3.
        let a = sketch_of(0..60_000, 3);
        let b = sketch_of(30_000..90_000, 3);
        let sim = similarity(&a, &b).unwrap();
        let rel = |est: f64, truth: f64| (est - truth).abs() / truth;
        assert!(
            rel(sim.intersection, 30_000.0) < 0.25,
            "∩ {}",
            sim.intersection
        );
        assert!(rel(sim.union, 90_000.0) < 0.15, "∪ {}", sim.union);
        assert!((sim.jaccard - 1.0 / 3.0).abs() < 0.1, "J {}", sim.jaccard);
        assert!(
            rel(sim.difference_a_minus_b, 30_000.0) < 0.35,
            "A∖B {}",
            sim.difference_a_minus_b
        );
    }

    #[test]
    fn union_estimate_agrees_with_merge_estimate() {
        let a = sketch_of(0..40_000, 4);
        let b = sketch_of(20_000..70_000, 4);
        let sim = similarity(&a, &b).unwrap();
        let merged = a.merged(&b).unwrap().estimate_distinct().value;
        let rel = (sim.union - merged).abs() / merged;
        assert!(
            rel < 0.1,
            "similarity union {} vs merge {merged}",
            sim.union
        );
    }

    #[test]
    fn uncoordinated_sketches_are_rejected() {
        let a = sketch_of(0..100, 1);
        let b = sketch_of(0..100, 2);
        assert_eq!(similarity(&a, &b).unwrap_err(), SketchError::SeedMismatch);
        let c = {
            let mut s = DistinctSketch::new(&SketchConfig::new(0.2, 0.1).unwrap(), 1);
            s.extend_labels(0..10);
            s
        };
        assert!(matches!(
            similarity(&a, &c).unwrap_err(),
            SketchError::ConfigMismatch { .. }
        ));
    }

    #[test]
    fn empty_vs_empty() {
        let a = DistinctSketch::new(&cfg(), 9);
        let b = DistinctSketch::new(&cfg(), 9);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.intersection, 0.0);
        assert_eq!(sim.union, 0.0);
        assert_eq!(sim.jaccard, 0.0);
    }

    #[test]
    fn jaccard_matrix_is_symmetric_with_unit_diagonal() {
        let a = sketch_of(0..1_000, 7);
        let b = sketch_of(500..1_500, 7);
        let c = sketch_of(5_000..6_000, 7);
        let m = jaccard_matrix(&[&a, &b, &c]).unwrap();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, m[j][i]);
            }
        }
        assert!((m[0][1] - 1.0 / 3.0).abs() < 0.05, "J(a,b) {}", m[0][1]);
        assert_eq!(m[0][2], 0.0);
        assert_eq!(m[1][2], 0.0);
        // Empty sketch gets a 0 diagonal.
        let empty = DistinctSketch::new(&cfg(), 7);
        let m = jaccard_matrix(&[&empty]).unwrap();
        assert_eq!(m[0][0], 0.0);
    }

    #[test]
    fn jaccard_matrix_rejects_uncoordinated_members() {
        let a = sketch_of(0..100, 1);
        let b = sketch_of(0..100, 2);
        assert!(jaccard_matrix(&[&a, &b]).is_err());
    }

    #[test]
    fn empty_vs_nonempty() {
        let a = DistinctSketch::new(&cfg(), 9);
        let b = sketch_of(0..300, 9);
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.intersection, 0.0);
        assert_eq!(sim.union, 300.0);
        assert_eq!(sim.difference_b_minus_a, 300.0);
    }

    /// Mirror of the engine's per-trial Jaccard, computed from the public
    /// trial state with the documented convention (empty-union trial →
    /// 0.0). Used by the regression tests below as an independent oracle.
    fn expected_jaccard<V: crate::trial::Payload>(
        a: &GtSketch<V>,
        b: &GtSketch<V>,
    ) -> (f64, usize) {
        use gt_hash::LevelHasher;
        let mut per_trial = Vec::new();
        let mut empties = 0usize;
        for (ta, tb) in a.trials().iter().zip(b.trials().iter()) {
            let l = ta.level().max(tb.level());
            let sa: std::collections::BTreeSet<u64> = ta
                .sample_iter()
                .map(|(x, _)| x)
                .filter(|&x| ta.hasher().level(x) >= l)
                .collect();
            let sb: std::collections::BTreeSet<u64> = tb
                .sample_iter()
                .map(|(x, _)| x)
                .filter(|&x| tb.hasher().level(x) >= l)
                .collect();
            let inter = sa.intersection(&sb).count();
            let union = sa.len() + sb.len() - inter;
            if union == 0 {
                empties += 1;
                per_trial.push(0.0);
            } else {
                per_trial.push(inter as f64 / union as f64);
            }
        }
        (median_f64(&mut per_trial), empties)
    }

    #[test]
    fn empty_union_trials_count_as_zero_in_the_jaccard_median() {
        // Regression for the empty-union bias: capacity 2 forces deep
        // levels on identical 1k-label streams, so some trials end with
        // an empty aligned union while others see the full J = 1 signal.
        // The old code dropped the empty trials from the median (pulling
        // it toward the populated trials' 1.0); the convention now is
        // that every trial votes, empty-union trials voting 0.0.
        let shape =
            SketchConfig::from_shape(0.5, 0.01, 2, 65, gt_hash::HashFamilyKind::Pairwise).unwrap();
        let mut found_mixed = false;
        for seed in 0..20u64 {
            let mut a = DistinctSketch::new(&shape, seed);
            let mut b = DistinctSketch::new(&shape, seed);
            a.extend_labels((0..1_000).map(gt_hash::fold61));
            b.extend_labels((0..1_000).map(gt_hash::fold61));
            let (want, empties) = expected_jaccard(&a, &b);
            let sim = similarity(&a, &b).unwrap();
            assert_eq!(sim.jaccard, want, "seed {seed} ({empties} empty trials)");
            if empties > 0 && empties < shape.trials() {
                found_mixed = true;
                // With identical streams every populated trial votes 1.0,
                // so any deviation below 1.0 proves the empty trials were
                // not silently dropped.
                if 2 * empties > shape.trials() {
                    assert_eq!(sim.jaccard, 0.0, "seed {seed}");
                } else {
                    assert_eq!(sim.jaccard, 1.0, "seed {seed}");
                }
            }
        }
        assert!(
            found_mixed,
            "test must exercise a mix of empty and populated trials"
        );
    }

    #[test]
    fn near_empty_and_disjoint_sketches_follow_the_convention() {
        // Disjoint streams under heavy subsampling: populated trials vote
        // 0.0 (no intersection witnesses) and empty trials vote 0.0 by
        // convention, so the median is exactly 0 either way.
        let shape =
            SketchConfig::from_shape(0.5, 0.01, 2, 33, gt_hash::HashFamilyKind::Pairwise).unwrap();
        let mut a = DistinctSketch::new(&shape, 3);
        let mut b = DistinctSketch::new(&shape, 3);
        a.extend_labels((0..2_000).map(gt_hash::fold61));
        b.extend_labels((2_000..4_000).map(gt_hash::fold61));
        let sim = similarity(&a, &b).unwrap();
        assert_eq!(sim.jaccard, 0.0);
        let (want, _) = expected_jaccard(&a, &b);
        assert_eq!(sim.jaccard, want);
        // Near-empty: single shared label, level skew from one big side.
        let cfg = cfg();
        let mut big = DistinctSketch::new(&cfg, 5);
        let mut tiny = DistinctSketch::new(&cfg, 5);
        big.extend_labels((0..80_000).map(gt_hash::fold61));
        tiny.insert(gt_hash::fold61(7));
        let sim = similarity(&big, &tiny).unwrap();
        let (want, _) = expected_jaccard(&big, &tiny);
        assert_eq!(sim.jaccard, want);
    }

    #[test]
    fn jaccard_matrix_matches_per_pair_similarity_exactly() {
        // Regression for the O(k²) re-clone fix: the one-context matrix
        // must be value-identical to calling similarity() per pair,
        // including under level skew (one giant member) and an empty one.
        let a = sketch_of(0..1_000, 7);
        let b = sketch_of(500..1_500, 7);
        let c = sketch_of(0..90_000, 7);
        let empty = DistinctSketch::new(&cfg(), 7);
        let members: [&DistinctSketch; 4] = [&a, &b, &c, &empty];
        let m = jaccard_matrix(&members).unwrap();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let sim = similarity(members[i], members[j]).unwrap();
                assert_eq!(m[i][j], sim.jaccard, "pair ({i}, {j})");
                assert_eq!(m[j][i], sim.jaccard, "pair ({j}, {i})");
            }
        }
        assert!(jaccard_matrix::<()>(&[]).unwrap().is_empty());
    }
}
