//! Data-parallel sketch construction: split the input, sketch each chunk
//! on its own thread, merge.
//!
//! This is the shared-memory incarnation of the paper's model (each chunk
//! is a "party") and the pattern the parallelism guide calls fan-out/merge.
//! Because the union of coordinated sketches is *exactly* the sketch of
//! the concatenation, the parallel build is bitwise-deterministic: it
//! produces the same sample sets as a sequential build of the same data,
//! regardless of thread count or scheduling. That property is tested, not
//! just asserted, and is what makes the speedup free of accuracy cost.
//!
//! Workers ingest their chunk through the batch-monomorphic kernel
//! ([`DistinctSketch::extend_slice`]), not per-item inserts — the scaling
//! curve should measure parallelism, not a slow inner loop. Experiment
//! `e14` (`experiments e14`, `results/BENCH_parallel.json`) sweeps the
//! thread count, re-checks bitwise identity at every width, and records
//! the speedup curve.

use crate::error::Result;
use crate::merge::{merge_all, merge_tree};
use crate::params::SketchConfig;
use crate::sketch::{DistinctSketch, GtSketch};
use crate::trial::Payload;

/// Build a [`DistinctSketch`] over `labels` using `threads` worker threads
/// (values < 2 fall back to a sequential build).
///
/// ```
/// use gt_core::{parallel::build_parallel, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let labels: Vec<u64> = (0..1000).collect();
/// let par = build_parallel(&cfg, 7, &labels, 4).unwrap();
/// let seq = build_parallel(&cfg, 7, &labels, 1).unwrap();
/// // Not merely close — identical, regardless of thread count.
/// assert_eq!(par.estimate_distinct().value, seq.estimate_distinct().value);
/// ```
///
/// # Errors
/// Propagates merge errors (impossible for sketches built here, all from
/// the same config/seed — kept in the signature for uniformity).
pub fn build_parallel(
    config: &SketchConfig,
    master_seed: u64,
    labels: &[u64],
    threads: usize,
) -> Result<DistinctSketch> {
    if threads < 2 || labels.len() < 2 {
        let mut s = DistinctSketch::new(config, master_seed);
        s.extend_slice(labels);
        return Ok(s);
    }
    let threads = threads.min(labels.len());
    let chunk_len = labels.len().div_ceil(threads);
    let locals: Vec<DistinctSketch> = crossbeam::scope(|scope| {
        let handles: Vec<_> = labels
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move |_| {
                    let mut s = DistinctSketch::new(config, master_seed);
                    s.extend_slice(chunk);
                    s
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked");
    merge_all(&locals)
}

/// Payload-carrying parallel build: sketch `(label, payload)` chunks on
/// worker threads with the merging batch kernel
/// ([`GtSketch::insert_batch_merging_with`]), then union. Duplicate
/// arrivals reconcile as `stored.merge(incoming)` on workers and at the
/// union alike, so the result is bitwise-identical — payloads included —
/// to a sequential [`GtSketch::insert_merging_with`] pass over the
/// concatenated input.
///
/// # Errors
/// Propagates merge errors, as [`build_parallel`].
pub fn build_parallel_with<V: Payload + Send + Sync>(
    config: &SketchConfig,
    master_seed: u64,
    items: &[(u64, V)],
    threads: usize,
) -> Result<GtSketch<V>> {
    if threads < 2 || items.len() < 2 {
        let mut s = GtSketch::new(config, master_seed);
        s.insert_batch_merging_with(items);
        return Ok(s);
    }
    let threads = threads.min(items.len());
    let chunk_len = items.len().div_ceil(threads);
    let locals: Vec<GtSketch<V>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move |_| {
                    let mut s = GtSketch::new(config, master_seed);
                    s.insert_batch_merging_with(chunk);
                    s
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked");
    merge_all(&locals)
}

/// Merge a set of per-party sketches pairwise in parallel (tree reduction).
///
/// Thin wrapper over [`merge_tree`], kept for its by-value signature. For
/// small `t` the sequential fold in [`merge_all`] is what actually runs
/// (the crossover lives in `merge_tree`); the tree pays off for referees
/// that aggregate hundreds of parties, where the reduction depth drops
/// from `t` to `log₂ t`.
///
/// # Errors
/// [`crate::SketchError::EmptyUnion`] on an empty vector, plus any
/// propagated merge error.
pub fn merge_all_parallel(summaries: Vec<DistinctSketch>) -> Result<DistinctSketch> {
    merge_tree(&summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn sample_sets(s: &DistinctSketch) -> Vec<std::collections::BTreeSet<u64>> {
        s.trials()
            .iter()
            .map(|t| t.sample_iter().map(|(k, _)| k).collect())
            .collect()
    }

    #[test]
    fn parallel_build_is_bitwise_deterministic() {
        let labels: Vec<u64> = (0..40_000).map(gt_hash::fold61).collect();
        let seq = build_parallel(&cfg(), 21, &labels, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = build_parallel(&cfg(), 21, &labels, threads).unwrap();
            assert_eq!(sample_sets(&par), sample_sets(&seq), "threads {threads}");
            assert_eq!(par.estimate_distinct().value, seq.estimate_distinct().value);
            assert_eq!(par.items_observed(), seq.items_observed());
        }
    }

    #[test]
    fn parallel_build_handles_duplicate_heavy_input() {
        let mut labels: Vec<u64> = (0..1_000).map(gt_hash::fold61).collect();
        labels.extend_from_within(..); // 2×
        labels.extend_from_within(..); // 4×
        let s = build_parallel(&cfg(), 22, &labels, 4).unwrap();
        assert_eq!(s.estimate_distinct().value, 1_000.0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let s = build_parallel(&cfg(), 23, &[], 4).unwrap();
        assert_eq!(s.estimate_distinct().value, 0.0);
        let s = build_parallel(&cfg(), 23, &[42], 4).unwrap();
        assert_eq!(s.estimate_distinct().value, 1.0);
    }

    #[test]
    fn more_threads_than_labels() {
        let labels: Vec<u64> = (0..5).map(gt_hash::fold61).collect();
        let s = build_parallel(&cfg(), 24, &labels, 64).unwrap();
        assert_eq!(s.estimate_distinct().value, 5.0);
    }

    #[test]
    fn payload_parallel_build_matches_sequential_merging_build() {
        // Duplicate labels straddle chunk boundaries with distinct
        // payloads, so worker-local reconciliation AND union-time
        // reconciliation both fire; the result must still equal the
        // single-observer merging build exactly, payloads included.
        let items: Vec<(u64, u64)> = (0..30_000u64)
            .map(|i| (gt_hash::fold61(i % 9_000), i))
            .collect();
        let mut seq = GtSketch::<u64>::new(&cfg(), 26);
        for &(l, p) in &items {
            seq.insert_merging_with(l, p);
        }
        let state = |s: &GtSketch<u64>| -> Vec<(u8, std::collections::BTreeMap<u64, u64>)> {
            s.trials()
                .iter()
                .map(|t| (t.level(), t.sample_iter().collect()))
                .collect()
        };
        for threads in [1, 2, 4, 8] {
            let par = build_parallel_with(&cfg(), 26, &items, threads).unwrap();
            assert_eq!(state(&par), state(&seq), "threads {threads}");
            assert_eq!(par.items_observed(), seq.items_observed());
        }
    }

    #[test]
    fn tree_merge_matches_sequential_fold() {
        let parties: Vec<DistinctSketch> = (0..13)
            .map(|p| {
                let mut s = DistinctSketch::new(&cfg(), 25);
                s.extend_labels((p * 700..(p + 2) * 700).map(gt_hash::fold61));
                s
            })
            .collect();
        let seq = merge_all(&parties).unwrap();
        let tree = merge_all_parallel(parties).unwrap();
        assert_eq!(
            tree.estimate_distinct().value,
            seq.estimate_distinct().value
        );
        assert_eq!(sample_sets(&tree), sample_sets(&seq));
    }

    #[test]
    fn tree_merge_empty_is_an_error() {
        assert_eq!(
            merge_all_parallel(vec![]).unwrap_err(),
            crate::error::SketchError::EmptyUnion
        );
    }
}
