//! Data-parallel sketch construction: split the input, sketch each chunk
//! on its own thread, merge.
//!
//! This is the shared-memory incarnation of the paper's model (each chunk
//! is a "party") and the pattern the parallelism guide calls fan-out/merge.
//! Because the union of coordinated sketches is *exactly* the sketch of
//! the concatenation, the parallel build is bitwise-deterministic: it
//! produces the same sample sets as a sequential build of the same data,
//! regardless of thread count or scheduling. That property is tested, not
//! just asserted, and is what makes the speedup free of accuracy cost.
//!
//! ## Why the worker count is clamped
//!
//! The PR-3 bench recorded `build_parallel` *losing* to sequential (0.75×
//! at 2 threads, 0.53× at 4). The cause was not the merge or the kernel
//! but oversubscription: the builder spawned exactly the requested thread
//! count even when the host had fewer cores, so every "worker" paid
//! spawn/join, scheduler migration, and per-thread sketch setup while
//! time-slicing a single core. [`build_parallel`] now treats `threads` as
//! a *ceiling* and clamps it to [`effective_workers`]; on a one-core host
//! every width degrades to the sequential build (parity, not slowdown),
//! and on a multi-core host the sweep measures real parallelism. Three
//! further costs are amortized: chunks are balanced to within one item
//! ([`balanced_chunks`] — the old `div_ceil` split left the last worker
//! nearly idle while adding a full-size chunk to the critical path),
//! per-worker sketch setup clones one prototype instead of re-deriving
//! the seed sequence and hash tables per thread, and the worker-local
//! union goes through [`merge_tree`].
//!
//! Workers ingest their chunk through the batch-monomorphic kernel
//! ([`DistinctSketch::extend_slice`]), not per-item inserts — the scaling
//! curve should measure parallelism, not a slow inner loop. Experiment
//! `e14` (`experiments e14`, `results/BENCH_parallel.json`) sweeps the
//! thread count, re-checks bitwise identity at every width, and records
//! the speedup curve alongside the host's worker count.

use crate::error::Result;
use crate::merge::merge_tree;
use crate::params::SketchConfig;
use crate::sketch::{DistinctSketch, GtSketch};
use crate::trial::Payload;
use crate::workers::{balanced_chunks, effective_workers, run_workers};

/// Build a [`DistinctSketch`] over `labels` using at most `threads` worker
/// threads, clamped to the host's [`effective_workers`] (values < 2 after
/// clamping fall back to a sequential build).
///
/// ```
/// use gt_core::{parallel::build_parallel, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let labels: Vec<u64> = (0..1000).collect();
/// let par = build_parallel(&cfg, 7, &labels, 4).unwrap();
/// let seq = build_parallel(&cfg, 7, &labels, 1).unwrap();
/// // Not merely close — identical, regardless of thread count.
/// assert_eq!(par.estimate_distinct().value, seq.estimate_distinct().value);
/// ```
///
/// # Errors
/// [`crate::SketchError::WorkerPanicked`] if a worker thread panics;
/// merge errors are kept in the signature for uniformity (impossible for
/// sketches built here, all from the same config/seed).
pub fn build_parallel(
    config: &SketchConfig,
    master_seed: u64,
    labels: &[u64],
    threads: usize,
) -> Result<DistinctSketch> {
    build_parallel_exact(
        config,
        master_seed,
        labels,
        threads.min(effective_workers()),
    )
}

/// [`build_parallel`] without the worker clamp: spawns exactly `workers`
/// threads (capped only by the label count). This is how the determinism
/// tests exercise the chunked path on single-core hosts, and how a bench
/// can measure the oversubscription penalty on purpose — production
/// callers want [`build_parallel`].
///
/// # Errors
/// As [`build_parallel`].
pub fn build_parallel_exact(
    config: &SketchConfig,
    master_seed: u64,
    labels: &[u64],
    workers: usize,
) -> Result<DistinctSketch> {
    if workers < 2 || labels.len() < 2 {
        let mut s = DistinctSketch::new(config, master_seed);
        s.extend_slice(labels);
        return Ok(s);
    }
    // One prototype; workers clone it instead of re-deriving the seed
    // sequence and hash tables per thread. Cloning an empty sketch is a
    // few allocations; `new` walks the whole seed schedule.
    let prototype = DistinctSketch::new(config, master_seed);
    let locals = run_workers(balanced_chunks(labels, workers), |chunk| {
        let mut s = prototype.clone();
        s.extend_slice(chunk);
        s
    })?;
    merge_tree(&locals)
}

/// Payload-carrying parallel build: sketch `(label, payload)` chunks on
/// worker threads with the merging batch kernel
/// ([`GtSketch::insert_batch_merging_with`]), then union. Duplicate
/// arrivals reconcile as `stored.merge(incoming)` on workers and at the
/// union alike, so the result is bitwise-identical — payloads included —
/// to a sequential [`GtSketch::insert_merging_with`] pass over the
/// concatenated input. `threads` is a ceiling, clamped to
/// [`effective_workers`] exactly as in [`build_parallel`].
///
/// # Errors
/// As [`build_parallel`].
pub fn build_parallel_with<V: Payload + Send + Sync>(
    config: &SketchConfig,
    master_seed: u64,
    items: &[(u64, V)],
    threads: usize,
) -> Result<GtSketch<V>> {
    build_parallel_with_exact(config, master_seed, items, threads.min(effective_workers()))
}

/// [`build_parallel_with`] without the worker clamp (see
/// [`build_parallel_exact`] for when that is the right tool).
///
/// # Errors
/// As [`build_parallel`].
pub fn build_parallel_with_exact<V: Payload + Send + Sync>(
    config: &SketchConfig,
    master_seed: u64,
    items: &[(u64, V)],
    workers: usize,
) -> Result<GtSketch<V>> {
    if workers < 2 || items.len() < 2 {
        let mut s = GtSketch::new(config, master_seed);
        s.insert_batch_merging_with(items);
        return Ok(s);
    }
    let prototype = GtSketch::<V>::new(config, master_seed);
    let locals = run_workers(balanced_chunks(items, workers), |chunk| {
        let mut s = prototype.clone();
        s.insert_batch_merging_with(chunk);
        s
    })?;
    merge_tree(&locals)
}

/// Merge a set of per-party sketches pairwise in parallel (tree reduction).
///
/// Thin wrapper over [`merge_tree`], kept for its by-value signature. For
/// small `t` the sequential fold in [`crate::merge::merge_all`] is what actually runs
/// (the crossover lives in `merge_tree`); the tree pays off for referees
/// that aggregate hundreds of parties, where the reduction depth drops
/// from `t` to `log₂ t`.
///
/// # Errors
/// [`crate::SketchError::EmptyUnion`] on an empty vector, plus any
/// propagated merge error.
pub fn merge_all_parallel(summaries: Vec<DistinctSketch>) -> Result<DistinctSketch> {
    merge_tree(&summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_all;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn sample_sets(s: &DistinctSketch) -> Vec<std::collections::BTreeSet<u64>> {
        s.trials()
            .iter()
            .map(|t| t.sample_iter().map(|(k, _)| k).collect())
            .collect()
    }

    #[test]
    fn parallel_build_is_bitwise_deterministic() {
        let labels: Vec<u64> = (0..40_000).map(gt_hash::fold61).collect();
        let seq = build_parallel(&cfg(), 21, &labels, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = build_parallel(&cfg(), 21, &labels, threads).unwrap();
            assert_eq!(sample_sets(&par), sample_sets(&seq), "threads {threads}");
            assert_eq!(par.estimate_distinct().value, seq.estimate_distinct().value);
            assert_eq!(par.items_observed(), seq.items_observed());
        }
    }

    #[test]
    fn exact_worker_counts_are_bitwise_deterministic() {
        // `build_parallel` clamps to the host's cores, so on a one-core CI
        // runner the loop above never leaves the sequential path. The
        // `_exact` variant forces real chunked builds at awkward widths
        // (3 and 7 do not divide the input evenly) no matter the host.
        let labels: Vec<u64> = (0..40_000).map(gt_hash::fold61).collect();
        let seq = build_parallel_exact(&cfg(), 21, &labels, 1).unwrap();
        for workers in [2, 3, 7] {
            let par = build_parallel_exact(&cfg(), 21, &labels, workers).unwrap();
            assert_eq!(sample_sets(&par), sample_sets(&seq), "workers {workers}");
            assert_eq!(par.estimate_distinct().value, seq.estimate_distinct().value);
            assert_eq!(par.items_observed(), seq.items_observed());
        }
    }

    #[test]
    fn parallel_build_handles_duplicate_heavy_input() {
        let mut labels: Vec<u64> = (0..1_000).map(gt_hash::fold61).collect();
        labels.extend_from_within(..); // 2×
        labels.extend_from_within(..); // 4×
        let s = build_parallel_exact(&cfg(), 22, &labels, 4).unwrap();
        assert_eq!(s.estimate_distinct().value, 1_000.0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let s = build_parallel(&cfg(), 23, &[], 4).unwrap();
        assert_eq!(s.estimate_distinct().value, 0.0);
        let s = build_parallel(&cfg(), 23, &[42], 4).unwrap();
        assert_eq!(s.estimate_distinct().value, 1.0);
    }

    #[test]
    fn more_threads_than_labels() {
        let labels: Vec<u64> = (0..5).map(gt_hash::fold61).collect();
        let s = build_parallel_exact(&cfg(), 24, &labels, 64).unwrap();
        assert_eq!(s.estimate_distinct().value, 5.0);
    }

    #[test]
    fn payload_parallel_build_matches_sequential_merging_build() {
        // Duplicate labels straddle chunk boundaries with distinct
        // payloads, so worker-local reconciliation AND union-time
        // reconciliation both fire; the result must still equal the
        // single-observer merging build exactly, payloads included. The
        // `_exact` variant keeps the chunked path exercised on one-core
        // hosts.
        let items: Vec<(u64, u64)> = (0..30_000u64)
            .map(|i| (gt_hash::fold61(i % 9_000), i))
            .collect();
        let mut seq = GtSketch::<u64>::new(&cfg(), 26);
        for &(l, p) in &items {
            seq.insert_merging_with(l, p);
        }
        let state = |s: &GtSketch<u64>| -> Vec<(u8, std::collections::BTreeMap<u64, u64>)> {
            s.trials()
                .iter()
                .map(|t| (t.level(), t.sample_iter().collect()))
                .collect()
        };
        for workers in [1, 2, 4, 8] {
            let par = build_parallel_with_exact(&cfg(), 26, &items, workers).unwrap();
            assert_eq!(state(&par), state(&seq), "workers {workers}");
            assert_eq!(par.items_observed(), seq.items_observed());
        }
    }

    #[test]
    fn tree_merge_matches_sequential_fold() {
        let parties: Vec<DistinctSketch> = (0..13)
            .map(|p| {
                let mut s = DistinctSketch::new(&cfg(), 25);
                s.extend_labels((p * 700..(p + 2) * 700).map(gt_hash::fold61));
                s
            })
            .collect();
        let seq = merge_all(&parties).unwrap();
        let tree = merge_all_parallel(parties).unwrap();
        assert_eq!(
            tree.estimate_distinct().value,
            seq.estimate_distinct().value
        );
        assert_eq!(sample_sets(&tree), sample_sets(&seq));
    }

    #[test]
    fn tree_merge_empty_is_an_error() {
        assert_eq!(
            merge_all_parallel(vec![]).unwrap_err(),
            crate::error::SketchError::EmptyUnion
        );
    }
}
