//! A thread-safe sharded sketch for shared-memory ingest.
//!
//! The distributed-streams model maps directly onto multicore ingestion:
//! every shard is a "party" holding its own coordinated sketch, and a
//! query is the "referee" merging them. Sharding by label (not
//! round-robin) keeps each label's duplicates on one shard, so per-shard
//! mutexes are held only for that shard's slice of the universe —
//! writers on different shards never contend. Merging is lossless (same
//! seeds), so the sharded estimate equals the single-sketch estimate on
//! the same label multiset, exactly.
//!
//! Lock choice per the concurrency guide: `parking_lot::Mutex` (no
//! poisoning to handle, word-sized, fast uncontended path) wrapped in
//! `CachePadded` so shard locks do not false-share a cache line.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::error::Result;
use crate::estimate::Estimate;
use crate::merge::merge_all;
use crate::params::SketchConfig;
use crate::sketch::DistinctSketch;

/// A concurrently updatable distinct-count sketch.
///
/// `insert` takes `&self` and may be called from any number of threads;
/// `estimate_distinct`/`snapshot` merge the shards on demand.
///
/// ```
/// use gt_core::{ShardedSketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let sketch = ShardedSketch::new(&cfg, 7, 4);
/// crossbeam::scope(|scope| {
///     for t in 0..4u64 {
///         let sketch = &sketch;
///         scope.spawn(move |_| {
///             for i in 0..250 {
///                 sketch.insert(t * 250 + i); // disjoint ranges
///             }
///         });
///     }
/// })
/// .unwrap();
/// assert_eq!(sketch.estimate_distinct().unwrap().value, 1000.0);
/// ```
pub struct ShardedSketch {
    shards: Vec<CachePadded<Mutex<DistinctSketch>>>,
    /// Bit mask selecting a shard from a mixed label (shards is a power of
    /// two).
    mask: u64,
}

/// Per-shard staging-buffer length used by [`ShardedSketch::extend_labels`]
/// before draining a shard under one lock acquisition.
pub const SHARD_BUF: usize = 256;

impl ShardedSketch {
    /// Create a sketch with `shards` independent stripes (rounded up to a
    /// power of two). All stripes share the config and master seed, so
    /// they are mutually mergeable — and mergeable with any other party's
    /// sketch built from the same material.
    pub fn new(config: &SketchConfig, master_seed: u64, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| CachePadded::new(Mutex::new(DistinctSketch::new(config, master_seed))))
            .collect();
        ShardedSketch {
            shards,
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, label: u64) -> usize {
        // Shard by mixed label so duplicates always land on the same shard
        // and the choice is independent of the sketch's seeded hashes.
        (gt_hash::mix64(label ^ 0xA5A5_A5A5_A5A5_A5A5) & self.mask) as usize
    }

    /// Observe a label (thread-safe).
    #[inline]
    pub fn insert(&self, label: u64) {
        let shard = self.shard_of(label);
        self.shards[shard].lock().insert(label);
    }

    /// Observe a batch: labels are staged into a per-shard buffer
    /// ([`SHARD_BUF`] entries each) and every full buffer is drained under
    /// one lock acquisition through the shard's batch kernel
    /// ([`DistinctSketch::extend_slice`]). This both cuts lock traffic
    /// (one acquisition per `SHARD_BUF` labels per shard instead of one
    /// per run of same-shard labels) and gives each shard the
    /// monomorphic bulk-hash path. Equivalent to per-item
    /// [`ShardedSketch::insert`]: each shard sees its labels in stream
    /// order either way, and shards are independent sketches.
    pub fn extend_labels(&self, labels: impl IntoIterator<Item = u64>) {
        let mut bufs: Vec<Vec<u64>> = (0..self.shards.len())
            .map(|_| Vec::with_capacity(SHARD_BUF))
            .collect();
        for label in labels {
            let shard = self.shard_of(label);
            let buf = &mut bufs[shard];
            buf.push(label);
            if buf.len() == SHARD_BUF {
                self.shards[shard].lock().extend_slice(buf);
                buf.clear();
            }
        }
        for (shard, buf) in bufs.iter().enumerate() {
            if !buf.is_empty() {
                self.shards[shard].lock().extend_slice(buf);
            }
        }
    }

    /// Merge all shards into one [`DistinctSketch`] (the referee step).
    pub fn snapshot(&self) -> Result<DistinctSketch> {
        let copies: Vec<DistinctSketch> = self.shards.iter().map(|s| s.lock().clone()).collect();
        merge_all(&copies)
    }

    /// `(ε, δ)`-estimate of the distinct labels observed across all
    /// threads.
    pub fn estimate_distinct(&self) -> Result<Estimate> {
        Ok(self.snapshot()?.estimate_distinct())
    }

    /// Total items observed across shards.
    pub fn items_observed(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().items_observed()).sum()
    }

    /// Aggregated observability counters: the field-wise sum of every
    /// shard's [`crate::metrics::MetricsSnapshot`].
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        let mut total = crate::metrics::MetricsSnapshot::default();
        for shard in &self.shards {
            total.absorb(&shard.lock().metrics_snapshot());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    #[test]
    fn sharded_equals_sequential_exactly() {
        let sharded = ShardedSketch::new(&cfg(), 11, 8);
        let mut sequential = DistinctSketch::new(&cfg(), 11);
        let labels: Vec<u64> = (0..30_000).map(gt_hash::fold61).collect();
        for &l in &labels {
            sharded.insert(l);
            sequential.insert(l);
        }
        let snap = sharded.snapshot().unwrap();
        assert_eq!(
            snap.estimate_distinct().value,
            sequential.estimate_distinct().value
        );
        assert_eq!(snap.sample_entries(), sequential.sample_entries());
    }

    #[test]
    fn concurrent_ingest_from_many_threads() {
        let sharded = ShardedSketch::new(&cfg(), 12, 8);
        let threads = 8;
        let per_thread = 20_000u64;
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let sharded = &sharded;
                scope.spawn(move |_| {
                    // Overlapping ranges: half of each thread's labels are
                    // shared with its neighbour.
                    let start = t * per_thread / 2;
                    for i in start..start + per_thread {
                        sharded.insert(gt_hash::fold61(i));
                    }
                });
            }
        })
        .unwrap();
        let truth = (threads + 1) * per_thread / 2;
        let est = sharded.estimate_distinct().unwrap().value;
        let rel = (est - truth as f64).abs() / truth as f64;
        assert!(rel < 0.1, "est {est}, truth {truth}");
        assert_eq!(sharded.items_observed(), threads * per_thread);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedSketch::new(&cfg(), 1, 3).shard_count(), 4);
        assert_eq!(ShardedSketch::new(&cfg(), 1, 0).shard_count(), 1);
        assert_eq!(ShardedSketch::new(&cfg(), 1, 16).shard_count(), 16);
    }

    #[test]
    fn duplicates_across_threads_are_free() {
        // Stay under the per-trial capacity so the estimate is exact and
        // any duplicate leakage across threads would be visible as a
        // deviation from the precise count.
        let sharded = ShardedSketch::new(&cfg(), 13, 4);
        let labels: Vec<u64> = (0..1_000).map(gt_hash::fold61).collect();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                let sharded = &sharded;
                let labels = &labels;
                scope.spawn(move |_| {
                    for &l in labels {
                        sharded.insert(l);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(sharded.estimate_distinct().unwrap().value, 1_000.0);
    }

    #[test]
    fn batched_extend_equals_per_item_insert() {
        // The run-grouped lock path must produce exactly the state the
        // per-item path does, including on shard-ping-pong orderings.
        let batched = ShardedSketch::new(&cfg(), 15, 8);
        let per_item = ShardedSketch::new(&cfg(), 15, 8);
        // Interleave two ranges so consecutive labels rarely share a shard,
        // then append a sorted run so same-shard runs also occur.
        let mut labels: Vec<u64> = (0..5_000u64)
            .flat_map(|i| [gt_hash::fold61(i), gt_hash::fold61(i + 100_000)])
            .collect();
        labels.extend((0..2_000u64).map(gt_hash::fold61));
        batched.extend_labels(labels.iter().copied());
        for &l in &labels {
            per_item.insert(l);
        }
        let a = batched.snapshot().unwrap();
        let b = per_item.snapshot().unwrap();
        assert_eq!(a.estimate_distinct().value, b.estimate_distinct().value);
        assert_eq!(a.sample_entries(), b.sample_entries());
        assert_eq!(batched.items_observed(), per_item.items_observed());
        assert_eq!(batched.metrics_snapshot(), per_item.metrics_snapshot());
    }

    #[test]
    fn metrics_aggregate_across_shards() {
        let sharded = ShardedSketch::new(&cfg(), 16, 4);
        sharded.extend_labels((0..1_000).map(gt_hash::fold61));
        let snap = sharded.metrics_snapshot();
        let trials = cfg().trials() as u64;
        // Every label records one outcome per trial on exactly one shard.
        assert_eq!(snap.trial_inserts(), 1_000 * trials);
        assert_eq!(snap.merge_calls, 0);
        // The referee-side snapshot records its merges on the snapshot
        // sketch, not the shards.
        let _ = sharded.snapshot().unwrap();
        assert_eq!(sharded.metrics_snapshot().merge_calls, 0);
    }

    #[test]
    fn snapshot_is_mergeable_with_external_parties() {
        // A sharded local sketch and a remote single-threaded party union
        // cleanly when they share seeds.
        let local = ShardedSketch::new(&cfg(), 14, 4);
        local.extend_labels((0..800).map(gt_hash::fold61));
        let mut remote = DistinctSketch::new(&cfg(), 14);
        remote.extend_labels((400..1_200).map(gt_hash::fold61));
        let mut snap = local.snapshot().unwrap();
        snap.merge_from(&remote).unwrap();
        // 1200 distinct labels fit the per-trial capacity (1200 at ε=0.1),
        // so the union estimate is exact.
        assert_eq!(snap.estimate_distinct().value, 1_200.0);
    }
}
