//! Thread-safe sketches for shared-memory ingest and live serving.
//!
//! Two designs live here, for two workloads:
//!
//! - [`ShardedSketch`] — ingest-optimised. The distributed-streams model
//!   maps directly onto multicore ingestion: every shard is a "party"
//!   holding its own coordinated sketch, and a query is the "referee"
//!   merging them. Sharding by label keeps each label's duplicates on one
//!   shard, so writers on different shards never contend — but a query
//!   must merge every shard, which makes reads expensive and
//!   writer-blocking.
//! - [`ConcurrentSketch`] — serving-optimised, after the local-buffer /
//!   global-sketch pattern of Rinberg et al. (*Fast Concurrent Data
//!   Sketches*, PAPERS.md). Each writer owns a thread-local
//!   [`DistinctSketch`] buffer fed through the batch kernels and
//!   *propagates* it into one shared global sketch in epochs — when the
//!   buffer fills, when the writer's local level falls behind the
//!   published global level (the buffered labels are mostly doomed to
//!   subsampling, so ship them and adopt the higher level), or on
//!   flush/drop. Every propagation publishes an immutable
//!   [`SketchSnapshot`] behind an `Arc`, so readers serve
//!   [`ConcurrentSketch::estimate_distinct`] from an O(1) pointer copy
//!   without ever touching the global ingest lock.
//!
//! Coordination (same config + master seed everywhere) is what makes the
//! concurrent design *exact*: the final global sketch is the lossless
//! union of the writers' buffers, bitwise-identical to a sequential
//! sketch of the same label multiset regardless of interleaving. The
//! propagation/snapshot protocol is model-checked exhaustively in
//! `tests/loom_model.rs` and differentially tested against sequential
//! ingest in `tests/concurrent_equivalence.rs` (canonical encoded bytes).
//!
//! Lock choice per the concurrency guide: `parking_lot::Mutex` (no
//! poisoning to handle, word-sized, fast uncontended path) wrapped in
//! `CachePadded` so shard locks do not false-share a cache line. This
//! crate forbids `unsafe`, so snapshot publication uses a second,
//! pointer-copy-only mutex rather than a seqlock or raw atomic pointer
//! swap; the lock ordering is global-before-published and readers take
//! only the published lock, so readers can never block on ingest work.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::error::Result;
use crate::estimate::Estimate;
use crate::merge::merge_all;
use crate::metrics::{ConcurrentMetrics, ConcurrentMetricsSnapshot, PropagationCause};
use crate::params::SketchConfig;
use crate::sketch::DistinctSketch;

/// A concurrently updatable distinct-count sketch.
///
/// `insert` takes `&self` and may be called from any number of threads;
/// `estimate_distinct`/`snapshot` merge the shards on demand.
///
/// ```
/// use gt_core::{ShardedSketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let sketch = ShardedSketch::new(&cfg, 7, 4);
/// crossbeam::scope(|scope| {
///     for t in 0..4u64 {
///         let sketch = &sketch;
///         scope.spawn(move |_| {
///             for i in 0..250 {
///                 sketch.insert(t * 250 + i); // disjoint ranges
///             }
///         });
///     }
/// })
/// .unwrap();
/// assert_eq!(sketch.estimate_distinct().unwrap().value, 1000.0);
/// ```
pub struct ShardedSketch {
    shards: Vec<CachePadded<Mutex<DistinctSketch>>>,
    /// Bit mask selecting a shard from a mixed label (shards is a power of
    /// two).
    mask: u64,
}

/// Per-shard staging-buffer length used by [`ShardedSketch::extend_labels`]
/// before draining a shard under one lock acquisition.
pub const SHARD_BUF: usize = 256;

impl ShardedSketch {
    /// Create a sketch with `shards` independent stripes (rounded up to a
    /// power of two). All stripes share the config and master seed, so
    /// they are mutually mergeable — and mergeable with any other party's
    /// sketch built from the same material.
    pub fn new(config: &SketchConfig, master_seed: u64, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| CachePadded::new(Mutex::new(DistinctSketch::new(config, master_seed))))
            .collect();
        ShardedSketch {
            shards,
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, label: u64) -> usize {
        // Shard by mixed label so duplicates always land on the same shard
        // and the choice is independent of the sketch's seeded hashes.
        (gt_hash::mix64(label ^ 0xA5A5_A5A5_A5A5_A5A5) & self.mask) as usize
    }

    /// Observe a label (thread-safe).
    #[inline]
    pub fn insert(&self, label: u64) {
        let shard = self.shard_of(label);
        self.shards[shard].lock().insert(label);
    }

    /// Observe a batch: labels are staged into a per-shard buffer
    /// ([`SHARD_BUF`] entries each) and every full buffer is drained under
    /// one lock acquisition through the shard's batch kernel
    /// ([`DistinctSketch::extend_slice`]). This both cuts lock traffic
    /// (one acquisition per `SHARD_BUF` labels per shard instead of one
    /// per run of same-shard labels) and gives each shard the
    /// monomorphic bulk-hash path. Equivalent to per-item
    /// [`ShardedSketch::insert`]: each shard sees its labels in stream
    /// order either way, and shards are independent sketches.
    pub fn extend_labels(&self, labels: impl IntoIterator<Item = u64>) {
        let mut bufs: Vec<Vec<u64>> = (0..self.shards.len())
            .map(|_| Vec::with_capacity(SHARD_BUF))
            .collect();
        for label in labels {
            let shard = self.shard_of(label);
            let buf = &mut bufs[shard];
            buf.push(label);
            if buf.len() == SHARD_BUF {
                self.shards[shard].lock().extend_slice(buf);
                buf.clear();
            }
        }
        for (shard, buf) in bufs.iter().enumerate() {
            if !buf.is_empty() {
                self.shards[shard].lock().extend_slice(buf);
            }
        }
    }

    /// Merge all shards into one [`DistinctSketch`] (the referee step).
    pub fn snapshot(&self) -> Result<DistinctSketch> {
        let copies: Vec<DistinctSketch> = self.shards.iter().map(|s| s.lock().clone()).collect();
        merge_all(&copies)
    }

    /// `(ε, δ)`-estimate of the distinct labels observed across all
    /// threads.
    pub fn estimate_distinct(&self) -> Result<Estimate> {
        Ok(self.snapshot()?.estimate_distinct())
    }

    /// Total items observed across shards.
    pub fn items_observed(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().items_observed()).sum()
    }

    /// Aggregated observability counters: the field-wise sum of every
    /// shard's [`crate::metrics::MetricsSnapshot`], read at one consistent
    /// cut.
    ///
    /// All shard locks are acquired (in index order) before the first
    /// counter is read. Ingest paths flush their [`crate::metrics::InsertTally`]
    /// while still holding the shard lock, so the aggregate includes each
    /// flush entirely or not at all, and includes every flush of every
    /// ingest call that returned before this call began — see the
    /// "aggregation ordering guarantee" in [`crate::metrics`]. The
    /// historical lock-at-a-time implementation could return totals that
    /// never existed at any instant (a concurrent writer's *later* work on
    /// a high-index shard counted while its *earlier* work on a low-index
    /// shard was missed); `metrics_cut_is_consistent` below is the
    /// regression test. Only this method takes more than one shard lock,
    /// and always in index order, so it cannot deadlock against ingest.
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        let guards: Vec<_> = self.shards.iter().map(|shard| shard.lock()).collect();
        let mut total = crate::metrics::MetricsSnapshot::default();
        for guard in &guards {
            total.absorb(&guard.metrics_snapshot());
        }
        total
    }
}

/// Default number of buffered items after which a [`SketchWriter`]
/// propagates into the global sketch.
pub const WRITER_BUF: u64 = 8 * 1024;

/// An immutable point-in-time view of a [`ConcurrentSketch`], published
/// at the end of a propagation epoch and shared with readers by `Arc`.
#[derive(Clone, Debug)]
pub struct SketchSnapshot {
    epoch: u64,
    sketch: DistinctSketch,
}

impl SketchSnapshot {
    /// The propagation epoch that published this snapshot (0 = the empty
    /// initial snapshot). Strictly increasing across the snapshots any
    /// single reader observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen sketch: the union of every writer buffer propagated up
    /// to this epoch — exactly the sketch a sequential observer of that
    /// prefix-union multiset would hold.
    pub fn sketch(&self) -> &DistinctSketch {
        &self.sketch
    }

    /// `(ε, δ)`-estimate of the distinct labels covered by this epoch.
    pub fn estimate_distinct(&self) -> Estimate {
        self.sketch.estimate_distinct()
    }

    /// Items (duplicates included) covered by this epoch.
    pub fn items_observed(&self) -> u64 {
        self.sketch.items_observed()
    }
}

/// A multi-writer / multi-reader distinct-count sketch with epoch-based
/// propagation and non-blocking snapshot reads.
///
/// Writers are created with [`ConcurrentSketch::writer`] (one per thread;
/// they hold `&self`, so scoped threads borrow the sketch directly) and
/// ingest through a thread-local [`DistinctSketch`] running the PR2 batch
/// kernels at full speed — no shared state is touched on the hot path
/// except one relaxed atomic load per call to detect level lag. Readers
/// call [`ConcurrentSketch::snapshot`] / [`ConcurrentSketch::estimate_distinct`]
/// at any time; they clone an `Arc` under a mutex whose critical section
/// is a pointer copy, so a reader can be preempted mid-read without ever
/// making a writer wait on ingest work (and vice versa).
///
/// # Estimate semantics
///
/// A snapshot at epoch `e` is *exactly* the sequential sketch of the
/// union of all writer buffers propagated by epoch `e` — a prefix-union
/// of the full stream set. Its estimate therefore carries the full E1
/// `(ε, δ)` contract *for that prefix-union's cardinality*, and both the
/// epoch and the covered item count are monotone across the snapshots a
/// reader takes. What a mid-stream snapshot does **not** promise is
/// proximity to the final answer: labels still sitting in writer-local
/// buffers (at most `threshold` items per writer) are not yet covered.
/// After every writer flushes (or drops), the snapshot equals the
/// sequential sketch of the entire multiset, bitwise.
///
/// ```
/// use gt_core::{ConcurrentSketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let sketch = ConcurrentSketch::new(&cfg, 7);
/// crossbeam::scope(|scope| {
///     for t in 0..4u64 {
///         let sketch = &sketch;
///         scope.spawn(move |_| {
///             let mut w = sketch.writer();
///             for i in 0..250 {
///                 w.insert(t * 250 + i); // disjoint ranges
///             }
///         }); // drop flushes
///     }
///     // Live queries while writers run: never blocks on ingest.
///     let _ = sketch.estimate_distinct();
/// })
/// .unwrap();
/// assert_eq!(sketch.estimate_distinct().value, 1000.0);
/// ```
pub struct ConcurrentSketch {
    config: SketchConfig,
    master_seed: u64,
    /// The shared union of everything propagated so far. Held only during
    /// propagation (merge + clone + publish), never by readers.
    global: Mutex<DistinctSketch>,
    /// The current published snapshot. The critical section on this lock
    /// is a pointer copy on both sides — the `forbid(unsafe)` stand-in
    /// for an epoch-pinned arc-swap. Lock order: `global` before
    /// `published`; readers take only `published`.
    published: Mutex<Arc<SketchSnapshot>>,
    /// Epoch of the current published snapshot (advisory mirror of
    /// `published.epoch` for lock-free progress checks).
    epoch: AtomicU64,
    /// Max trial level of the published snapshot; writers poll this with
    /// one relaxed load per ingest call to detect level lag.
    published_level: AtomicU64,
    metrics: ConcurrentMetrics,
}

impl ConcurrentSketch {
    /// Create an empty concurrent sketch. Writers, readers, and any
    /// external parties merging with exported state must share `config`
    /// and `master_seed` (the coordination contract).
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        let empty = DistinctSketch::new(config, master_seed);
        ConcurrentSketch {
            config: *config,
            master_seed,
            published: Mutex::new(Arc::new(SketchSnapshot {
                epoch: 0,
                sketch: empty.clone(),
            })),
            global: Mutex::new(empty),
            epoch: AtomicU64::new(0),
            published_level: AtomicU64::new(0),
            metrics: ConcurrentMetrics::new(),
        }
    }

    /// The sketch's configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The master seed (the coordination token).
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// A writer handle with the default propagation threshold
    /// ([`WRITER_BUF`] items). One per ingesting thread.
    pub fn writer(&self) -> SketchWriter<'_> {
        self.writer_with_threshold(WRITER_BUF)
    }

    /// A writer handle that propagates after `threshold` buffered items
    /// (`threshold` is clamped to ≥ 1). Small thresholds trade ingest
    /// throughput for snapshot freshness.
    pub fn writer_with_threshold(&self, threshold: u64) -> SketchWriter<'_> {
        SketchWriter {
            shared: self,
            local: DistinctSketch::new(&self.config, self.master_seed),
            buffered: 0,
            threshold: threshold.max(1),
        }
    }

    /// The current published snapshot (wait-free for practical purposes:
    /// the lock protecting the pointer is held only for pointer copies).
    pub fn snapshot(&self) -> Arc<SketchSnapshot> {
        let snap = Arc::clone(&self.published.lock());
        self.metrics.record_snapshot_read();
        snap
    }

    /// `(ε, δ)`-estimate of the distinct labels covered by the current
    /// epoch, served from the published snapshot without blocking
    /// writers. See the type docs for mid-stream semantics.
    pub fn estimate_distinct(&self) -> Estimate {
        self.snapshot().estimate_distinct()
    }

    /// The epoch of the current published snapshot (0 until the first
    /// propagation). Monotone.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Relaxed)
    }

    /// Items (duplicates included) covered by the current published
    /// snapshot. Excludes items still in writer-local buffers.
    pub fn items_observed(&self) -> u64 {
        self.snapshot().items_observed()
    }

    /// Concurrent-path observability counters (see [`crate::metrics`]).
    pub fn metrics_snapshot(&self) -> ConcurrentMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Merge a writer's local buffer into the global sketch, publish the
    /// next epoch's snapshot, and hand the writer back a fresh buffer
    /// with the global's levels adopted.
    ///
    /// The snapshot is published while the global lock is still held, so
    /// publication order equals merge order and snapshots are monotone in
    /// both epoch and covered items — the loom model's negative test
    /// (`publish moved after unlock`) demonstrates exactly which
    /// violation this ordering prevents.
    fn propagate(&self, local: &mut DistinctSketch, buffered: u64, cause: PropagationCause) {
        let local_metrics = local.metrics_snapshot();
        let mut fresh = DistinctSketch::new(&self.config, self.master_seed);

        let mut global = self.global.lock();
        global
            .merge_from(local)
            .expect("writer and global share config and seed by construction");
        let adopted = fresh
            .align_levels_to(&global)
            .expect("fresh local buffer shares config and seed by construction");
        let next_epoch = self.epoch.load(Relaxed) + 1;
        let snap = Arc::new(SketchSnapshot {
            epoch: next_epoch,
            sketch: global.clone(),
        });
        *self.published.lock() = snap;
        self.epoch.store(next_epoch, Relaxed);
        self.published_level
            .store(u64::from(global.max_level()), Relaxed);
        drop(global);

        *local = fresh;
        self.metrics.record_publish();
        self.metrics
            .record_propagation(cause, buffered, adopted, &local_metrics);
    }
}

/// A single thread's ingest handle into a [`ConcurrentSketch`].
///
/// Not `Sync`/shareable — create one per thread. Dropping the writer
/// flushes its remaining buffer, so after a scoped-thread join the shared
/// sketch covers everything the thread ingested.
pub struct SketchWriter<'a> {
    shared: &'a ConcurrentSketch,
    local: DistinctSketch,
    buffered: u64,
    threshold: u64,
}

impl SketchWriter<'_> {
    /// Observe a label.
    #[inline]
    pub fn insert(&mut self, label: u64) {
        self.local.insert(label);
        self.buffered += 1;
        self.maybe_propagate();
    }

    /// Observe a slice of labels through the batch-monomorphic kernel
    /// (the fastest path; see [`DistinctSketch::extend_slice`]). Long
    /// slices are fed in threshold-sized chunks so propagation cadence —
    /// and therefore snapshot freshness — does not degrade when callers
    /// hand over whole streams at once.
    pub fn extend_slice(&mut self, labels: &[u64]) {
        let mut rest = labels;
        while !rest.is_empty() {
            let room = (self.threshold - self.buffered).max(1) as usize;
            let take = room.min(rest.len());
            self.local.extend_slice(&rest[..take]);
            self.buffered += take as u64;
            self.maybe_propagate();
            rest = &rest[take..];
        }
    }

    /// Observe every label from an iterator (buffered through the kernel,
    /// see [`DistinctSketch::extend_labels`]).
    pub fn extend_labels(&mut self, labels: impl IntoIterator<Item = u64>) {
        // Feed in kernel-sized chunks so a long iterator still honours
        // the propagation threshold along the way.
        let mut buf = Vec::with_capacity(crate::sketch::INGEST_BUF);
        for label in labels {
            buf.push(label);
            if buf.len() == crate::sketch::INGEST_BUF {
                self.extend_slice(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.extend_slice(&buf);
        }
    }

    /// Items currently buffered locally (not yet visible to readers).
    pub fn buffered(&self) -> u64 {
        self.buffered
    }

    /// Push the local buffer into the shared sketch now, publishing a new
    /// snapshot. Called automatically when the buffer fills, when the
    /// published level runs ahead of the local level, and on drop.
    pub fn flush(&mut self) {
        if self.buffered > 0 {
            self.shared
                .propagate(&mut self.local, self.buffered, PropagationCause::Flush);
            self.buffered = 0;
        }
    }

    #[inline]
    fn maybe_propagate(&mut self) {
        if self.buffered >= self.threshold {
            self.shared
                .propagate(&mut self.local, self.buffered, PropagationCause::BufferFull);
            self.buffered = 0;
        } else if self.buffered > 0
            && self.shared.published_level.load(Relaxed) > u64::from(self.local.max_level())
        {
            // The global sketch promoted past us: most of what we'd buffer
            // from here would be thrown away at merge time anyway, so ship
            // the buffer early and adopt the higher level — below-level
            // labels then cost one masked compare instead of a sample slot.
            self.shared
                .propagate(&mut self.local, self.buffered, PropagationCause::LevelLag);
            self.buffered = 0;
        }
    }
}

impl Drop for SketchWriter<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    #[test]
    fn sharded_equals_sequential_exactly() {
        let sharded = ShardedSketch::new(&cfg(), 11, 8);
        let mut sequential = DistinctSketch::new(&cfg(), 11);
        let labels: Vec<u64> = (0..30_000).map(gt_hash::fold61).collect();
        for &l in &labels {
            sharded.insert(l);
            sequential.insert(l);
        }
        let snap = sharded.snapshot().unwrap();
        assert_eq!(
            snap.estimate_distinct().value,
            sequential.estimate_distinct().value
        );
        assert_eq!(snap.sample_entries(), sequential.sample_entries());
    }

    #[test]
    fn concurrent_ingest_from_many_threads() {
        let sharded = ShardedSketch::new(&cfg(), 12, 8);
        let threads = 8;
        let per_thread = 20_000u64;
        crossbeam::scope(|scope| {
            for t in 0..threads {
                let sharded = &sharded;
                scope.spawn(move |_| {
                    // Overlapping ranges: half of each thread's labels are
                    // shared with its neighbour.
                    let start = t * per_thread / 2;
                    for i in start..start + per_thread {
                        sharded.insert(gt_hash::fold61(i));
                    }
                });
            }
        })
        .unwrap();
        let truth = (threads + 1) * per_thread / 2;
        let est = sharded.estimate_distinct().unwrap().value;
        let rel = (est - truth as f64).abs() / truth as f64;
        assert!(rel < 0.1, "est {est}, truth {truth}");
        assert_eq!(sharded.items_observed(), threads * per_thread);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedSketch::new(&cfg(), 1, 3).shard_count(), 4);
        assert_eq!(ShardedSketch::new(&cfg(), 1, 0).shard_count(), 1);
        assert_eq!(ShardedSketch::new(&cfg(), 1, 16).shard_count(), 16);
    }

    #[test]
    fn duplicates_across_threads_are_free() {
        // Stay under the per-trial capacity so the estimate is exact and
        // any duplicate leakage across threads would be visible as a
        // deviation from the precise count.
        let sharded = ShardedSketch::new(&cfg(), 13, 4);
        let labels: Vec<u64> = (0..1_000).map(gt_hash::fold61).collect();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                let sharded = &sharded;
                let labels = &labels;
                scope.spawn(move |_| {
                    for &l in labels {
                        sharded.insert(l);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(sharded.estimate_distinct().unwrap().value, 1_000.0);
    }

    #[test]
    fn batched_extend_equals_per_item_insert() {
        // The run-grouped lock path must produce exactly the state the
        // per-item path does, including on shard-ping-pong orderings.
        let batched = ShardedSketch::new(&cfg(), 15, 8);
        let per_item = ShardedSketch::new(&cfg(), 15, 8);
        // Interleave two ranges so consecutive labels rarely share a shard,
        // then append a sorted run so same-shard runs also occur.
        let mut labels: Vec<u64> = (0..5_000u64)
            .flat_map(|i| [gt_hash::fold61(i), gt_hash::fold61(i + 100_000)])
            .collect();
        labels.extend((0..2_000u64).map(gt_hash::fold61));
        batched.extend_labels(labels.iter().copied());
        for &l in &labels {
            per_item.insert(l);
        }
        let a = batched.snapshot().unwrap();
        let b = per_item.snapshot().unwrap();
        assert_eq!(a.estimate_distinct().value, b.estimate_distinct().value);
        assert_eq!(a.sample_entries(), b.sample_entries());
        assert_eq!(batched.items_observed(), per_item.items_observed());
        assert_eq!(batched.metrics_snapshot(), per_item.metrics_snapshot());
    }

    #[test]
    fn metrics_aggregate_across_shards() {
        let sharded = ShardedSketch::new(&cfg(), 16, 4);
        sharded.extend_labels((0..1_000).map(gt_hash::fold61));
        let snap = sharded.metrics_snapshot();
        let trials = cfg().trials() as u64;
        // Every label records one outcome per trial on exactly one shard.
        assert_eq!(snap.trial_inserts(), 1_000 * trials);
        assert_eq!(snap.merge_calls, 0);
        // The referee-side snapshot records its merges on the snapshot
        // sketch, not the shards.
        let _ = sharded.snapshot().unwrap();
        assert_eq!(sharded.metrics_snapshot().merge_calls, 0);
    }

    #[test]
    fn metrics_cut_is_consistent() {
        // Regression for the lock-at-a-time aggregate: one writer loops
        // "insert a pre-seeded duplicate into a LOW-index shard, then a
        // fresh label into a HIGHER-index shard". Duplicate i happens
        // before fresh i, so at every consistent cut
        //   inserts_sampled ≤ inserts_duplicate + trials  (the pre-seed).
        // The old implementation read shard 0's counters, released its
        // lock, and only later read the high shard — so a loop iteration
        // running in between was counted fresh-side but not dup-side,
        // breaking the inequality. The all-locks cut cannot.
        let config =
            SketchConfig::from_shape(0.3, 0.3, 1 << 16, 3, gt_hash::HashFamilyKind::Pairwise)
                .unwrap();
        let trials = config.trials() as u64;
        let sharded = ShardedSketch::new(&config, 17, 4);

        // A label on shard 0 and a supply of labels on shards 1..4.
        // Capacity 2^16 >> the loop count keeps every trial at level 0,
        // so each dup insert records `trials` Duplicate outcomes and each
        // fresh insert `trials` Sampled outcomes.
        let dup_label = (0..)
            .map(gt_hash::fold61)
            .find(|&l| sharded.shard_of(l) == 0)
            .unwrap();
        let fresh: Vec<u64> = (1u64..)
            .map(gt_hash::fold61)
            .filter(|&l| l != dup_label && sharded.shard_of(l) > 0)
            .take(20_000)
            .collect();
        sharded.insert(dup_label); // pre-seed: `trials` Sampled outcomes

        crossbeam::scope(|scope| {
            let sharded = &sharded;
            let fresh = &fresh;
            scope.spawn(move |_| {
                for &label in fresh {
                    sharded.insert(dup_label);
                    sharded.insert(label);
                }
            });
            for _ in 0..300 {
                let snap = sharded.metrics_snapshot();
                assert!(
                    snap.inserts_sampled <= snap.inserts_duplicate + trials,
                    "inconsistent cut: {} sampled vs {} duplicate",
                    snap.inserts_sampled,
                    snap.inserts_duplicate,
                );
                // Totals must also be a multiple of one whole per-item
                // flush (`trials` outcomes), never a torn tally.
                assert_eq!(snap.trial_inserts() % trials, 0);
            }
        })
        .unwrap();

        let final_snap = sharded.metrics_snapshot();
        assert_eq!(
            final_snap.inserts_sampled,
            (1 + fresh.len() as u64) * trials
        );
        assert_eq!(final_snap.inserts_duplicate, fresh.len() as u64 * trials);
    }

    #[test]
    fn snapshot_is_mergeable_with_external_parties() {
        // A sharded local sketch and a remote single-threaded party union
        // cleanly when they share seeds.
        let local = ShardedSketch::new(&cfg(), 14, 4);
        local.extend_labels((0..800).map(gt_hash::fold61));
        let mut remote = DistinctSketch::new(&cfg(), 14);
        remote.extend_labels((400..1_200).map(gt_hash::fold61));
        let mut snap = local.snapshot().unwrap();
        snap.merge_from(&remote).unwrap();
        // 1200 distinct labels fit the per-trial capacity (1200 at ε=0.1),
        // so the union estimate is exact.
        assert_eq!(snap.estimate_distinct().value, 1_200.0);
    }

    /// Per-trial state fingerprint for bitwise-identity assertions.
    fn state(s: &DistinctSketch) -> Vec<(u8, u64, Vec<u64>)> {
        s.trials()
            .iter()
            .map(|t| {
                let mut sample: Vec<u64> = t.sample_iter().map(|(k, _)| k).collect();
                sample.sort_unstable();
                (t.level(), t.items_observed(), sample)
            })
            .collect()
    }

    #[test]
    fn concurrent_final_state_equals_sequential() {
        let concurrent = ConcurrentSketch::new(&cfg(), 21);
        let labels: Vec<u64> = (0..60_000).map(gt_hash::fold61).collect();
        crossbeam::scope(|scope| {
            for chunk in labels.chunks(15_000) {
                let concurrent = &concurrent;
                scope.spawn(move |_| {
                    let mut w = concurrent.writer_with_threshold(1_024);
                    w.extend_slice(chunk);
                });
            }
        })
        .unwrap();
        let mut sequential = DistinctSketch::new(&cfg(), 21);
        sequential.extend_slice(&labels);
        assert_eq!(state(concurrent.snapshot().sketch()), state(&sequential));
        assert_eq!(
            concurrent.estimate_distinct().value,
            sequential.estimate_distinct().value
        );
        assert_eq!(concurrent.items_observed(), 60_000);
    }

    #[test]
    fn snapshots_are_epoch_and_item_monotone() {
        let concurrent = ConcurrentSketch::new(&cfg(), 22);
        let mut w = concurrent.writer_with_threshold(500);
        let mut last_epoch = 0u64;
        let mut last_items = 0u64;
        let mut last_estimate = 0.0f64;
        for i in 0..10_000u64 {
            w.insert(gt_hash::fold61(i));
            if i % 977 == 0 {
                let snap = concurrent.snapshot();
                assert!(snap.epoch() >= last_epoch);
                assert!(snap.items_observed() >= last_items);
                // Disjoint duplicate-free stream: coverage only grows, and
                // under capacity the estimate is exact, hence monotone too.
                assert!(snap.estimate_distinct().value >= last_estimate);
                // A snapshot covers propagated items only: everything fed
                // minus what is still in the writer's buffer.
                assert_eq!(snap.items_observed(), i + 1 - w.buffered());
                last_epoch = snap.epoch();
                last_items = snap.items_observed();
                last_estimate = snap.estimate_distinct().value;
            }
        }
        drop(w);
        assert_eq!(concurrent.items_observed(), 10_000);
        assert!(concurrent.epoch() >= 20); // 10_000 / 500 propagations
    }

    #[test]
    fn drop_flushes_and_flush_is_idempotent() {
        let concurrent = ConcurrentSketch::new(&cfg(), 23);
        {
            let mut w = concurrent.writer(); // default threshold, never filled
            w.extend_labels((0..777).map(gt_hash::fold61));
            assert_eq!(concurrent.items_observed(), 0, "nothing propagated yet");
            w.flush();
            assert_eq!(concurrent.items_observed(), 777);
            w.flush(); // no-op: buffer empty
            assert_eq!(concurrent.epoch(), 1);
        } // drop with empty buffer: no extra epoch
        assert_eq!(concurrent.epoch(), 1);
        assert_eq!(concurrent.estimate_distinct().value, 777.0);
    }

    #[test]
    fn level_lag_triggers_early_propagation_and_adoption() {
        // Writer A drives the global level up; writer B, with a huge
        // threshold it would never reach, must still propagate via the
        // level-lag trigger and adopt the global level locally.
        let concurrent = ConcurrentSketch::new(&cfg(), 24);
        let mut a = concurrent.writer_with_threshold(4_096);
        a.extend_labels((0..150_000).map(gt_hash::fold61));
        a.flush();
        let global_level = u64::from(concurrent.snapshot().sketch().max_level());
        assert!(global_level > 0, "need promotions for this test");

        let mut b = concurrent.writer_with_threshold(u64::MAX);
        for i in 0..100u64 {
            b.insert(gt_hash::fold61(500_000 + i));
        }
        let metrics = concurrent.metrics_snapshot();
        assert!(
            metrics.propagations_level_lag > 0,
            "B lagged the published level and must have propagated early"
        );
        assert!(metrics.levels_adopted > 0);
        assert_eq!(u64::from(b.local.max_level()), global_level);
        // After adoption B stops lagging: no propagation per insert.
        let before = concurrent.metrics_snapshot().propagations();
        for i in 0..100u64 {
            b.insert(gt_hash::fold61(600_000 + i));
        }
        assert_eq!(concurrent.metrics_snapshot().propagations(), before);
    }

    #[test]
    fn readers_never_block_writers_and_see_live_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let concurrent = ConcurrentSketch::new(&cfg(), 25);
        let writers_done = AtomicUsize::new(0);
        let labels: Vec<u64> = (0..40_000).map(gt_hash::fold61).collect();
        let chunks: Vec<&[u64]> = labels.chunks(10_000).collect();
        let writer_count = chunks.len();
        crossbeam::scope(|scope| {
            for chunk in &chunks {
                let concurrent = &concurrent;
                let writers_done = &writers_done;
                scope.spawn(move |_| {
                    let mut w = concurrent.writer_with_threshold(512);
                    for &l in *chunk {
                        w.insert(l);
                    }
                    drop(w); // flush before reporting done
                    writers_done.fetch_add(1, Ordering::Release);
                });
            }
            let concurrent = &concurrent;
            let writers_done = &writers_done;
            scope.spawn(move |_| {
                let mut last = 0u64;
                // Count/ordering assertions only — no timing assumptions.
                while writers_done.load(Ordering::Acquire) < writer_count {
                    let snap = concurrent.snapshot();
                    assert!(snap.items_observed() >= last, "coverage went backwards");
                    last = snap.items_observed();
                }
            });
        })
        .unwrap();
        assert_eq!(concurrent.items_observed(), 40_000);
        let metrics = concurrent.metrics_snapshot();
        assert!(metrics.snapshot_reads > 0);
        assert_eq!(metrics.items_propagated, 40_000);
        assert_eq!(
            metrics.writer.trial_inserts(),
            40_000 * cfg().trials() as u64
        );
    }
}
