//! Set-expression evaluation over coordinated samples: estimate the
//! cardinality of **arbitrary** union / intersection / difference
//! expressions over many streams, from their sketches alone.
//!
//! ## Why coordination makes this possible
//!
//! Every sketch built from the same `(config, master_seed)` assigns every
//! label the same per-trial hash level. Aligning the trials of all
//! operands to a common level `l*` therefore yields Bernoulli samples of
//! rate `2^{-l*}` drawn with the **same** coin flips across operands —
//! so the sampled sets compose under ∪/∩/∖ exactly like the underlying
//! label sets do, and `|expr(S_1, …, S_k)| · 2^{l*}` is an unbiased
//! estimate of `|expr(A_1, …, A_k)|` for any set expression. This is the
//! framework of Dasgupta–Lang–Rhodes–Thaler ("A Framework for Estimating
//! Stream Expression Cardinalities") applied to the Gibbons–Tirthapura
//! coordinated sample; pairwise similarity (`crate::similarity`) is its
//! depth-1 special case.
//!
//! ## The alignment rule
//!
//! Each trial of each operand carries its own level. For one expression
//! evaluation, trial `t` is aligned to
//! `l* = max { level_t(operand) : operand referenced by the expression }`
//! — the smallest level at which every referenced operand's sample is a
//! valid Bernoulli sample. Using the per-expression max (rather than the
//! max over *all* operands in the context) keeps every pairwise query
//! value-identical to [`crate::similarity::similarity`] and wastes no
//! sampling rate on operands the expression never mentions.
//!
//! [`ExprContext`] precomputes, **once per sketch**, a label-sorted
//! `(label, hash level)` view of every trial's sample. Because the sample
//! invariant is `S = {x : lvl(x) ≥ level}`, filtering that view by
//! `hash level ≥ l*` reproduces `subsample_to_level(l*)` exactly, for any
//! `l*`, with no cloning — one context supports any number of queries at
//! any mix of alignment levels (this is what fixes the O(k²) re-clone
//! behaviour `jaccard_matrix` used to have).
//!
//! ## Error contract
//!
//! The `(ε, δ)` guarantee of the underlying sketch is **relative to the
//! union of the referenced operands**: with probability `1 − δ` per
//! trial-median, the estimate of `|expr|` is within `ε · |A_1 ∪ … ∪ A_k|`
//! (additive), not within `ε · |expr|` (relative). An intersection much
//! smaller than the union is estimated with correspondingly larger
//! relative error — experiment E22 measures exactly this. On top of the
//! distribution-free bound, [`ExpressionEstimate`] reports the empirical
//! per-trial variance and a ±2·SE confidence interval around the
//! per-trial mean.

use std::collections::HashSet;
use std::fmt;

use crate::error::{Result, SketchError};
use crate::estimate::{median_f64, Estimate};
use crate::sketch::GtSketch;
use crate::trial::Payload;

/// A set expression over stream operands, identified by index into the
/// operand slice an [`ExprContext`] was built from.
///
/// Build leaves with [`SetExpr::leaf`] and compose with the consuming
/// combinators:
///
/// ```
/// use gt_core::SetExpr;
/// // (A ∪ B) ∩ C, with A = operand 0, B = 1, C = 2.
/// let e = SetExpr::leaf(0).union(SetExpr::leaf(1)).intersect(SetExpr::leaf(2));
/// assert_eq!(e.depth(), 3);
/// assert_eq!(format!("{e}"), "((s0 ∪ s1) ∩ s2)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetExpr {
    /// The distinct-label set of operand `i`.
    Leaf(usize),
    /// Set union of the two sub-expressions.
    Union(Box<SetExpr>, Box<SetExpr>),
    /// Set intersection of the two sub-expressions.
    Intersect(Box<SetExpr>, Box<SetExpr>),
    /// Set difference: left minus right.
    Difference(Box<SetExpr>, Box<SetExpr>),
}

impl SetExpr {
    /// The distinct-label set of operand `i` (index into the context's
    /// operand slice).
    pub fn leaf(i: usize) -> Self {
        SetExpr::Leaf(i)
    }

    /// `self ∪ other`.
    #[must_use]
    pub fn union(self, other: SetExpr) -> Self {
        SetExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    #[must_use]
    pub fn intersect(self, other: SetExpr) -> Self {
        SetExpr::Intersect(Box::new(self), Box::new(other))
    }

    /// `self ∖ other`.
    #[must_use]
    pub fn difference(self, other: SetExpr) -> Self {
        SetExpr::Difference(Box::new(self), Box::new(other))
    }

    /// Nesting depth: 1 for a leaf, 1 + max child depth otherwise.
    pub fn depth(&self) -> usize {
        match self {
            SetExpr::Leaf(_) => 1,
            SetExpr::Union(a, b) | SetExpr::Intersect(a, b) | SetExpr::Difference(a, b) => {
                1 + a.depth().max(b.depth())
            }
        }
    }

    /// Invoke `f` on every leaf operand index (with repetition, in
    /// left-to-right order).
    pub fn for_each_leaf(&self, f: &mut impl FnMut(usize)) {
        match self {
            SetExpr::Leaf(i) => f(*i),
            SetExpr::Union(a, b) | SetExpr::Intersect(a, b) | SetExpr::Difference(a, b) => {
                a.for_each_leaf(f);
                b.for_each_leaf(f);
            }
        }
    }

    /// Evaluate the expression exactly over materialized label sets — the
    /// ground-truth oracle the sketch estimates are validated against in
    /// tests and experiment E22.
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] when a leaf index is out of range.
    pub fn eval_exact(&self, sets: &[HashSet<u64>]) -> Result<HashSet<u64>> {
        match self {
            SetExpr::Leaf(i) => sets.get(*i).cloned().ok_or(SketchError::InvalidConfig {
                parameter: "expr",
                reason: format!("leaf s{i} out of range for {} operands", sets.len()),
            }),
            SetExpr::Union(a, b) => {
                let mut out = a.eval_exact(sets)?;
                out.extend(b.eval_exact(sets)?);
                Ok(out)
            }
            SetExpr::Intersect(a, b) => {
                let rb = b.eval_exact(sets)?;
                let mut out = a.eval_exact(sets)?;
                out.retain(|x| rb.contains(x));
                Ok(out)
            }
            SetExpr::Difference(a, b) => {
                let rb = b.eval_exact(sets)?;
                let mut out = a.eval_exact(sets)?;
                out.retain(|x| !rb.contains(x));
                Ok(out)
            }
        }
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Leaf(i) => write!(f, "s{i}"),
            SetExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            SetExpr::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            SetExpr::Difference(a, b) => write!(f, "({a} ∖ {b})"),
        }
    }
}

/// Point estimate of `|expr|` with trial-level dispersion.
///
/// `estimate.value` is the median of the per-trial estimates — the
/// estimator the paper's `(ε, δ)` analysis covers, with `ε`/`δ` copied
/// from the operands' configuration and the **additive** error contract
/// described in the [module docs](self). `mean`/`variance` describe the
/// same per-trial estimates empirically and drive the ±2·SE confidence
/// interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpressionEstimate {
    /// Median of the per-trial estimates, tagged with the operands'
    /// `(ε, δ)`.
    pub estimate: Estimate,
    /// Mean of the per-trial estimates.
    pub mean: f64,
    /// Unbiased sample variance of the per-trial estimates (0 when only
    /// one trial is configured).
    pub variance: f64,
    /// Number of trials the estimates were computed over.
    pub trials: usize,
}

impl ExpressionEstimate {
    /// Standard error of the per-trial mean: `sqrt(variance / trials)`.
    pub fn std_error(&self) -> f64 {
        (self.variance / self.trials as f64).sqrt()
    }

    /// Lower edge of the ±2·SE interval around the mean, clamped at 0
    /// (cardinalities are non-negative).
    pub fn ci_lower(&self) -> f64 {
        (self.mean - 2.0 * self.std_error()).max(0.0)
    }

    /// Upper edge of the ±2·SE interval around the mean.
    pub fn ci_upper(&self) -> f64 {
        self.mean + 2.0 * self.std_error()
    }
}

/// Jaccard similarity between two set expressions, estimated per trial
/// and median'd.
///
/// Convention (shared with [`crate::similarity::similarity`]): a trial
/// whose aligned union is empty contributes `0.0` to the median rather
/// than being dropped — every trial gets a vote, so the median's `δ`
/// analysis keeps its full trial count and the estimate cannot be biased
/// toward the populated trials. `populated_trials` reports how many
/// trials actually had witnesses, so callers can judge how much signal
/// the figure carries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JaccardEstimate {
    /// Median over all trials of `|e1 ∩ e2| / |e1 ∪ e2|` (0.0 for
    /// empty-union trials).
    pub jaccard: f64,
    /// Total trials the median was taken over.
    pub trials: usize,
    /// Trials whose aligned union sample was non-empty.
    pub populated_trials: usize,
}

/// Evaluation context over a fixed slice of coordinated operand sketches.
///
/// Construction validates coordination (same seed and config for every
/// operand) and precomputes the per-trial `(label, hash level)` views —
/// the only O(operands · trials · capacity) work. Each [`ExprContext::eval`] /
/// [`ExprContext::eval_jaccard`] call then runs on the shared views.
///
/// ```
/// use gt_core::{DistinctSketch, ExprContext, SetExpr, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut a = DistinctSketch::new(&cfg, 7);
/// let mut b = DistinctSketch::new(&cfg, 7);
/// let mut c = DistinctSketch::new(&cfg, 7);
/// a.extend_labels(0..300);
/// b.extend_labels(200..500);
/// c.extend_labels(250..350);
/// let ctx = ExprContext::new(&[&a, &b, &c]).unwrap();
/// // |(A ∪ B) ∩ C| = |[250, 350)| = 100, exact below capacity.
/// let e = SetExpr::leaf(0).union(SetExpr::leaf(1)).intersect(SetExpr::leaf(2));
/// let est = ctx.eval(&e).unwrap();
/// assert_eq!(est.estimate.value, 100.0);
/// assert!(est.ci_lower() <= 100.0 && 100.0 <= est.ci_upper());
/// ```
#[derive(Clone, Debug)]
pub struct ExprContext<'a, V: Payload> {
    operands: Vec<&'a GtSketch<V>>,
    /// `views[s][t]`: operand `s`, trial `t`, label-sorted
    /// `(label, hash level)` pairs of the trial's sample.
    views: Vec<Vec<Vec<(u64, u8)>>>,
    /// `levels[s][t]`: operand `s`'s trial `t` current level.
    levels: Vec<Vec<u8>>,
    trials: usize,
}

impl<'a, V: Payload> ExprContext<'a, V> {
    /// Build a context over `operands`, validating coordination.
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] for an empty operand slice;
    /// [`SketchError::SeedMismatch`] / [`SketchError::ConfigMismatch`]
    /// when any operand disagrees with the first on seed or shape (the
    /// same rejections [`crate::similarity::similarity`] performs).
    pub fn new(operands: &[&'a GtSketch<V>]) -> Result<Self> {
        let first = operands.first().ok_or(SketchError::InvalidConfig {
            parameter: "expr",
            reason: "at least one operand sketch is required".to_string(),
        })?;
        for s in &operands[1..] {
            if s.master_seed() != first.master_seed() {
                return Err(SketchError::SeedMismatch);
            }
            if s.config() != first.config() {
                return Err(SketchError::ConfigMismatch {
                    detail: format!("{:?} vs {:?}", first.config(), s.config()),
                });
            }
        }
        let mut views = Vec::with_capacity(operands.len());
        let mut levels = Vec::with_capacity(operands.len());
        for s in operands {
            views.push(s.trials().iter().map(|t| t.leveled_sample()).collect());
            levels.push(s.trials().iter().map(|t| t.level()).collect());
        }
        Ok(ExprContext {
            operands: operands.to_vec(),
            views,
            levels,
            trials: first.trials().len(),
        })
    }

    /// The operand sketches this context was built over.
    pub fn operands(&self) -> &[&'a GtSketch<V>] {
        &self.operands
    }

    /// Number of trials every query is computed over.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Which operands `expr` references, as a mask over the operand
    /// slice; errors on out-of-range leaves.
    fn referenced(&self, expr: &SetExpr) -> Result<Vec<bool>> {
        let mut mask = vec![false; self.operands.len()];
        let mut bad = None;
        expr.for_each_leaf(&mut |i| match mask.get_mut(i) {
            Some(slot) => *slot = true,
            None => bad = bad.or(Some(i)),
        });
        match bad {
            Some(i) => Err(SketchError::InvalidConfig {
                parameter: "expr",
                reason: format!(
                    "leaf s{i} out of range for {} operands",
                    self.operands.len()
                ),
            }),
            None => Ok(mask),
        }
    }

    /// The per-trial alignment level for a set of referenced operands:
    /// `max` of their trial-`t` levels.
    fn alignment_level(&self, mask: &[bool], trial: usize) -> u8 {
        mask.iter()
            .zip(self.levels.iter())
            .filter(|&(&referenced, _)| referenced)
            .map(|(_, levels)| levels[trial])
            .max()
            .unwrap_or(0)
    }

    /// Evaluate `expr` on trial `trial` at alignment level `level`,
    /// returning the surviving labels sorted ascending.
    fn eval_node(&self, expr: &SetExpr, trial: usize, level: u8) -> Vec<u64> {
        match expr {
            SetExpr::Leaf(i) => self.views[*i][trial]
                .iter()
                .filter(|&&(_, lvl)| lvl >= level)
                .map(|&(label, _)| label)
                .collect(),
            SetExpr::Union(a, b) => union_sorted(
                &self.eval_node(a, trial, level),
                &self.eval_node(b, trial, level),
            ),
            SetExpr::Intersect(a, b) => intersect_sorted(
                &self.eval_node(a, trial, level),
                &self.eval_node(b, trial, level),
            ),
            SetExpr::Difference(a, b) => difference_sorted(
                &self.eval_node(a, trial, level),
                &self.eval_node(b, trial, level),
            ),
        }
    }

    /// The per-trial scaled estimates of `|expr|` — the values whose
    /// median [`ExprContext::eval`] reports. Exposed so multi-quantity
    /// callers (e.g. [`crate::similarity::similarity`]) can combine
    /// several expressions' trials without re-deriving the views.
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] on out-of-range leaves.
    pub fn per_trial_estimates(&self, expr: &SetExpr) -> Result<Vec<f64>> {
        let mask = self.referenced(expr)?;
        let mut out = Vec::with_capacity(self.trials);
        for t in 0..self.trials {
            let l = self.alignment_level(&mask, t);
            let count = self.eval_node(expr, t, l).len();
            out.push(count as f64 * 2f64.powi(i32::from(l)));
        }
        Ok(out)
    }

    /// Estimate `|expr|`: median of the per-trial estimates, with
    /// empirical mean/variance and the operands' `(ε, δ)` attached.
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] on out-of-range leaves.
    pub fn eval(&self, expr: &SetExpr) -> Result<ExpressionEstimate> {
        let mut per_trial = self.per_trial_estimates(expr)?;
        let n = per_trial.len();
        let mean = per_trial.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            per_trial.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let config = self.operands[0].config();
        Ok(ExpressionEstimate {
            estimate: Estimate {
                value: median_f64(&mut per_trial),
                epsilon: config.epsilon(),
                delta: config.delta(),
            },
            mean,
            variance,
            trials: n,
        })
    }

    /// Estimate the Jaccard similarity `|e1 ∩ e2| / |e1 ∪ e2|` as a
    /// per-trial ratio estimator, median'd over all trials.
    ///
    /// Both expressions are aligned to the **same** level per trial (the
    /// max over the operands either references), so the two sampled sets
    /// compose coordinately. A trial with an empty aligned union
    /// contributes `0.0` — see [`JaccardEstimate`] for the convention.
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] on out-of-range leaves.
    pub fn eval_jaccard(&self, e1: &SetExpr, e2: &SetExpr) -> Result<JaccardEstimate> {
        let m1 = self.referenced(e1)?;
        let m2 = self.referenced(e2)?;
        let mask: Vec<bool> = m1.iter().zip(&m2).map(|(&a, &b)| a || b).collect();
        let mut per_trial = Vec::with_capacity(self.trials);
        let mut populated = 0usize;
        for t in 0..self.trials {
            let l = self.alignment_level(&mask, t);
            let s1 = self.eval_node(e1, t, l);
            let s2 = self.eval_node(e2, t, l);
            let inter = count_intersect_sorted(&s1, &s2);
            let union = s1.len() + s2.len() - inter;
            if union > 0 {
                populated += 1;
                per_trial.push(inter as f64 / union as f64);
            } else {
                per_trial.push(0.0);
            }
        }
        Ok(JaccardEstimate {
            jaccard: median_f64(&mut per_trial),
            trials: self.trials,
            populated_trials: populated,
        })
    }
}

/// One-shot convenience: build a context over `operands` and evaluate
/// `expr`.
///
/// # Errors
/// Propagates [`ExprContext::new`] / [`ExprContext::eval`] errors.
pub fn eval_expr<V: Payload>(
    expr: &SetExpr,
    operands: &[&GtSketch<V>],
) -> Result<ExpressionEstimate> {
    ExprContext::new(operands)?.eval(expr)
}

/// Merge two ascending dedup'd slices into their ascending union.
fn union_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersect two ascending dedup'd slices.
fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// `a ∖ b` over two ascending dedup'd slices.
fn difference_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// `|a ∩ b|` over two ascending dedup'd slices, allocation-free.
fn count_intersect_sorted(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SketchConfig;
    use crate::sketch::DistinctSketch;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn sketch_of(range: std::ops::Range<u64>, seed: u64) -> DistinctSketch {
        let mut s = DistinctSketch::new(&cfg(), seed);
        s.extend_labels(range.map(gt_hash::fold61));
        s
    }

    #[test]
    fn small_expressions_are_exact_below_capacity() {
        let a = sketch_of(0..300, 11);
        let b = sketch_of(200..500, 11);
        let c = sketch_of(250..350, 11);
        let ctx = ExprContext::new(&[&a, &b, &c]).unwrap();
        let (la, lb, lc) = (SetExpr::leaf(0), SetExpr::leaf(1), SetExpr::leaf(2));
        // |A ∪ B| = 500, |A ∩ B| = 100, |A ∖ B| = 200, |(A ∪ B) ∩ C| = 100,
        // |((A ∪ B) ∩ C) ∖ A| = |[300, 350)| = 50.
        let cases = [
            (la.clone().union(lb.clone()), 500.0),
            (la.clone().intersect(lb.clone()), 100.0),
            (la.clone().difference(lb.clone()), 200.0),
            (la.clone().union(lb.clone()).intersect(lc.clone()), 100.0),
            (
                la.clone()
                    .union(lb.clone())
                    .intersect(lc.clone())
                    .difference(la.clone()),
                50.0,
            ),
        ];
        for (e, want) in cases {
            let est = ctx.eval(&e).unwrap();
            assert_eq!(est.estimate.value, want, "{e}");
            assert_eq!(est.mean, want, "{e}");
            assert_eq!(est.variance, 0.0, "{e}");
            assert!(est.ci_lower() <= want && want <= est.ci_upper(), "{e}");
        }
        // Jaccard of A, B is 100/500 exactly.
        let j = ctx.eval_jaccard(&la, &lb).unwrap();
        assert_eq!(j.jaccard, 0.2);
        assert_eq!(j.populated_trials, j.trials);
    }

    #[test]
    fn repeated_leaves_behave_like_set_algebra() {
        let a = sketch_of(0..40_000, 12);
        let ctx = ExprContext::new(&[&a]).unwrap();
        let la = SetExpr::leaf(0);
        let self_inter = ctx.eval(&la.clone().intersect(la.clone())).unwrap();
        let plain = ctx.eval(&la.clone()).unwrap();
        assert_eq!(self_inter.estimate.value, plain.estimate.value);
        let self_diff = ctx.eval(&la.clone().difference(la.clone())).unwrap();
        assert_eq!(self_diff.estimate.value, 0.0);
        assert_eq!(self_diff.variance, 0.0);
    }

    #[test]
    fn deep_expression_tracks_exact_truth_at_scale() {
        let a = sketch_of(0..60_000, 13);
        let b = sketch_of(30_000..90_000, 13);
        let c = sketch_of(45_000..75_000, 13);
        let ctx = ExprContext::new(&[&a, &b, &c]).unwrap();
        // ((A ∪ B) ∩ C) ∖ A = [60k, 75k): 15k labels.
        let e = SetExpr::leaf(0)
            .union(SetExpr::leaf(1))
            .intersect(SetExpr::leaf(2))
            .difference(SetExpr::leaf(0));
        assert!(e.depth() >= 3);
        let est = ctx.eval(&e).unwrap();
        // Additive contract: error within ε·|A ∪ B ∪ C| = 0.1 · 90k, with
        // slack for the trial count of the test config.
        assert!(
            (est.estimate.value - 15_000.0).abs() < 2.0 * 0.1 * 90_000.0,
            "estimate {}",
            est.estimate.value
        );
        assert!(est.variance > 0.0, "sampling noise must show in variance");
        assert!(est.std_error() > 0.0);
    }

    #[test]
    fn exact_oracle_matches_engine_below_capacity() {
        let sets: Vec<HashSet<u64>> = [(0u64..300), (200..500), (250..350)]
            .into_iter()
            .map(|r| r.map(gt_hash::fold61).collect())
            .collect();
        let a = sketch_of(0..300, 14);
        let b = sketch_of(200..500, 14);
        let c = sketch_of(250..350, 14);
        let ctx = ExprContext::new(&[&a, &b, &c]).unwrap();
        let e = SetExpr::leaf(0)
            .difference(SetExpr::leaf(1))
            .union(SetExpr::leaf(2).intersect(SetExpr::leaf(1)));
        let want = e.eval_exact(&sets).unwrap().len() as f64;
        assert_eq!(ctx.eval(&e).unwrap().estimate.value, want);
    }

    #[test]
    fn empty_operands_and_bad_leaves_are_rejected() {
        let none: [&DistinctSketch; 0] = [];
        assert!(matches!(
            ExprContext::new(&none).unwrap_err(),
            SketchError::InvalidConfig {
                parameter: "expr",
                ..
            }
        ));
        let a = sketch_of(0..10, 1);
        let ctx = ExprContext::new(&[&a]).unwrap();
        assert!(matches!(
            ctx.eval(&SetExpr::leaf(1)).unwrap_err(),
            SketchError::InvalidConfig {
                parameter: "expr",
                ..
            }
        ));
        assert!(SetExpr::leaf(3).eval_exact(&[HashSet::new()]).is_err());
    }

    #[test]
    fn uncoordinated_operands_are_rejected() {
        let a = sketch_of(0..100, 1);
        let b = sketch_of(0..100, 2);
        assert_eq!(
            ExprContext::new(&[&a, &b]).unwrap_err(),
            SketchError::SeedMismatch
        );
        let mut c = DistinctSketch::new(&SketchConfig::new(0.2, 0.1).unwrap(), 1);
        c.extend_labels(0..10);
        assert!(matches!(
            ExprContext::new(&[&a, &c]).unwrap_err(),
            SketchError::ConfigMismatch { .. }
        ));
    }

    #[test]
    fn empty_expression_estimates_zero_with_zero_variance() {
        let a = DistinctSketch::new(&cfg(), 5);
        let b = DistinctSketch::new(&cfg(), 5);
        let ctx = ExprContext::new(&[&a, &b]).unwrap();
        let e = SetExpr::leaf(0).union(SetExpr::leaf(1));
        let est = ctx.eval(&e).unwrap();
        assert_eq!(est.estimate.value, 0.0);
        assert_eq!(est.mean, 0.0);
        assert_eq!(est.variance, 0.0);
        assert_eq!((est.ci_lower(), est.ci_upper()), (0.0, 0.0));
        let j = ctx
            .eval_jaccard(&SetExpr::leaf(0), &SetExpr::leaf(1))
            .unwrap();
        assert_eq!(j.jaccard, 0.0);
        assert_eq!(j.populated_trials, 0);
    }

    #[test]
    fn alignment_uses_only_referenced_operands() {
        // c is huge (high trial levels); an expression over a and b alone
        // must not be degraded to c's levels — its estimate stays exact.
        let a = sketch_of(0..200, 21);
        let b = sketch_of(100..300, 21);
        let c = sketch_of(0..80_000, 21);
        assert!(c.max_level() > 0);
        let ctx = ExprContext::new(&[&a, &b, &c]).unwrap();
        let e = SetExpr::leaf(0).intersect(SetExpr::leaf(1));
        assert_eq!(ctx.eval(&e).unwrap().estimate.value, 100.0);
        assert_eq!(ctx.eval(&e).unwrap().variance, 0.0);
    }

    #[test]
    fn sorted_set_ops_are_correct() {
        let a = [1u64, 3, 5, 7];
        let b = [3u64, 4, 7, 9];
        assert_eq!(union_sorted(&a, &b), vec![1, 3, 4, 5, 7, 9]);
        assert_eq!(intersect_sorted(&a, &b), vec![3, 7]);
        assert_eq!(difference_sorted(&a, &b), vec![1, 5]);
        assert_eq!(count_intersect_sorted(&a, &b), 2);
        assert_eq!(union_sorted(&[], &b), b.to_vec());
        assert_eq!(intersect_sorted(&a, &[]), Vec::<u64>::new());
        assert_eq!(difference_sorted(&a, &[]), a.to_vec());
    }
}
