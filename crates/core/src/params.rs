//! Sketch configuration: turning `(ε, δ)` into concrete capacities and
//! trial counts.
//!
//! The paper's analysis gives an `(ε, δ)`-approximation from
//!
//! * per-trial sample capacity `c = Θ(1/ε²)` — each trial then estimates
//!   within `±ε` with constant probability (Chebyshev on the pairwise-
//!   independent level indicators), and
//! * `r = Θ(log 1/δ)` independent trials combined by the **median** —
//!   a Chernoff argument drives the failure probability below `δ`.
//!
//! The asymptotic constants are not pinned down by the abstract; the
//! concrete defaults here (`CAPACITY_CONSTANT = 12`, `TRIALS_CONSTANT = 6`)
//! were calibrated by experiment E1/E2 (see EXPERIMENTS.md) so that measured
//! error quantiles sit comfortably inside the `(ε, δ)` contract, and E11
//! ablates the capacity constant explicitly.

use gt_hash::{HashFamilyKind, SeedSequence};

use crate::error::{Result, SketchError};

/// Default `k` in `c = ⌈k/ε²⌉`.
pub const CAPACITY_CONSTANT: f64 = 12.0;

/// Default multiplier in `r = ⌈TRIALS_CONSTANT · ln(1/δ)⌉`.
pub const TRIALS_CONSTANT: f64 = 6.0;

/// Hard ceiling on per-trial capacity, to catch `ε` values that would
/// silently allocate gigabytes (ε = 0.001 → c = 12 million entries/trial).
pub const MAX_CAPACITY: usize = 1 << 28;

/// Hard ceiling on trials.
pub const MAX_TRIALS: usize = 1 << 12;

/// Complete shape of a coordinated-sampling sketch.
///
/// Two sketches can be merged iff they share the same `SketchConfig` *and*
/// the same seed material; the config is therefore part of the coordination
/// contract distributed to all parties up front.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SketchConfig {
    /// Target relative error.
    epsilon: f64,
    /// Target failure probability.
    delta: f64,
    /// Per-trial sample capacity `c`.
    capacity: usize,
    /// Number of independent trials `r`.
    trials: usize,
    /// Hash family used for every trial.
    hash_kind: HashFamilyKind,
}

impl SketchConfig {
    /// Build a configuration for an `(ε, δ)` guarantee with the default
    /// constants and the paper's pairwise-independent hash family.
    ///
    /// # Errors
    /// Rejects `ε ∉ (0, 1)`, `δ ∉ (0, 1)`, and shapes exceeding
    /// [`MAX_CAPACITY`] / [`MAX_TRIALS`].
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        Self::with_constants(epsilon, delta, CAPACITY_CONSTANT, TRIALS_CONSTANT)
    }

    /// Like [`SketchConfig::new`] but with explicit constants — the knob the
    /// E11 capacity ablation turns.
    pub fn with_constants(
        epsilon: f64,
        delta: f64,
        k_capacity: f64,
        k_trials: f64,
    ) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::InvalidConfig {
                parameter: "epsilon",
                reason: format!("must be in (0, 1), got {epsilon}"),
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::InvalidConfig {
                parameter: "delta",
                reason: format!("must be in (0, 1), got {delta}"),
            });
        }
        // NaN must be rejected too, hence the negated comparisons.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(k_capacity > 0.0) || !(k_trials > 0.0) {
            return Err(SketchError::InvalidConfig {
                parameter: "constants",
                reason: "capacity and trial constants must be positive".into(),
            });
        }
        let capacity = (k_capacity / (epsilon * epsilon)).ceil() as usize;
        let capacity = capacity.max(2);
        // Median needs an odd count to be a sample value; round up to odd.
        let trials = (k_trials * (1.0 / delta).ln()).ceil().max(1.0) as usize;
        let trials = if trials.is_multiple_of(2) {
            trials + 1
        } else {
            trials
        };
        Self::from_shape(epsilon, delta, capacity, trials, HashFamilyKind::Pairwise)
    }

    /// Fully explicit constructor (shape chosen by the caller, e.g. for
    /// equal-space comparisons against baselines in E6).
    pub fn from_shape(
        epsilon: f64,
        delta: f64,
        capacity: usize,
        trials: usize,
        hash_kind: HashFamilyKind,
    ) -> Result<Self> {
        // This constructor sits on the wire-decode path, so it must reject
        // everything `new` would (including NaN, which fails both range
        // comparisons below).
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::InvalidConfig {
                parameter: "epsilon",
                reason: format!("must be in (0, 1), got {epsilon}"),
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SketchError::InvalidConfig {
                parameter: "delta",
                reason: format!("must be in (0, 1), got {delta}"),
            });
        }
        if !(2..=MAX_CAPACITY).contains(&capacity) {
            return Err(SketchError::InvalidConfig {
                parameter: "capacity",
                reason: format!("must be in [2, {MAX_CAPACITY}], got {capacity}"),
            });
        }
        if !(1..=MAX_TRIALS).contains(&trials) {
            return Err(SketchError::InvalidConfig {
                parameter: "trials",
                reason: format!("must be in [1, {MAX_TRIALS}], got {trials}"),
            });
        }
        Ok(SketchConfig {
            epsilon,
            delta,
            capacity,
            trials,
            hash_kind,
        })
    }

    /// Replace the hash family (ablation experiments).
    pub fn with_hash_kind(mut self, kind: HashFamilyKind) -> Self {
        self.hash_kind = kind;
        self
    }

    /// Target relative error ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Target failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Per-trial sample capacity `c`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independent trials `r`.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The configured hash family.
    pub fn hash_kind(&self) -> HashFamilyKind {
        self.hash_kind
    }

    /// Derive the per-trial seed material from a master seed. All parties
    /// participating in one union must use the same master seed.
    pub fn seed_sequence(&self, master_seed: u64) -> SeedSequence {
        SeedSequence::new(master_seed)
    }

    /// Upper bound on resident sample entries (`trials · capacity`) — the
    /// quantity the paper's space bound `O(ε⁻² log(1/δ) log n)` counts, in
    /// words.
    pub fn max_sample_entries(&self) -> usize {
        self.trials * self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_formulas() {
        let cfg = SketchConfig::new(0.1, 0.05).unwrap();
        assert_eq!(cfg.capacity(), (12.0 / 0.01f64).ceil() as usize);
        let r = (6.0 * (1.0 / 0.05f64).ln()).ceil() as usize;
        let r = if r.is_multiple_of(2) { r + 1 } else { r };
        assert_eq!(cfg.trials(), r);
        assert_eq!(cfg.hash_kind(), gt_hash::HashFamilyKind::Pairwise);
    }

    #[test]
    fn trials_is_always_odd() {
        for delta in [0.5, 0.1, 0.05, 0.01, 0.001] {
            let cfg = SketchConfig::new(0.1, delta).unwrap();
            assert_eq!(cfg.trials() % 2, 1, "delta {delta}");
        }
    }

    #[test]
    fn capacity_scales_inverse_quadratically() {
        let a = SketchConfig::new(0.1, 0.1).unwrap();
        let b = SketchConfig::new(0.05, 0.1).unwrap();
        assert_eq!(b.capacity(), a.capacity() * 4);
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(SketchConfig::new(0.0, 0.1).is_err());
        assert!(SketchConfig::new(1.0, 0.1).is_err());
        assert!(SketchConfig::new(-0.5, 0.1).is_err());
        assert!(SketchConfig::new(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(SketchConfig::new(0.1, 0.0).is_err());
        assert!(SketchConfig::new(0.1, 1.0).is_err());
        assert!(SketchConfig::new(0.1, f64::NAN).is_err());
    }

    #[test]
    fn rejects_oversized_capacity() {
        // ε small enough to blow the cap.
        let err = SketchConfig::new(1e-5, 0.1).unwrap_err();
        match err {
            SketchError::InvalidConfig { parameter, .. } => assert_eq!(parameter, "capacity"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn explicit_shape_roundtrips() {
        let cfg =
            SketchConfig::from_shape(0.1, 0.1, 64, 5, gt_hash::HashFamilyKind::Tabulation).unwrap();
        assert_eq!(cfg.capacity(), 64);
        assert_eq!(cfg.trials(), 5);
        assert_eq!(cfg.max_sample_entries(), 320);
    }

    #[test]
    fn seed_sequence_is_master_determined() {
        let cfg = SketchConfig::new(0.1, 0.1).unwrap();
        assert_eq!(
            cfg.seed_sequence(9).trial_seed(3),
            cfg.seed_sequence(9).trial_seed(3)
        );
    }

    #[test]
    fn with_hash_kind_preserves_shape() {
        let cfg = SketchConfig::new(0.07, 0.02).unwrap();
        let swapped = cfg.with_hash_kind(gt_hash::HashFamilyKind::MultiplyShift);
        assert_eq!(swapped.capacity(), cfg.capacity());
        assert_eq!(swapped.trials(), cfg.trials());
        assert_eq!(swapped.hash_kind(), gt_hash::HashFamilyKind::MultiplyShift);
    }
}
