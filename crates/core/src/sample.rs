//! Extracting an explicit *distinct sample* — a Bernoulli sample of the
//! distinct labels of the union with known inclusion probability.
//!
//! The abstract's phrase "this sample can be used to estimate aggregate
//! functions on the union" is made concrete here: [`DistinctSample`] hands
//! the user the sampled labels plus the exact inclusion probability
//! `2^{-l}`, so *any* downstream Horvitz–Thompson style estimator can be
//! layered on without touching sketch internals.

use crate::sketch::GtSketch;
use crate::trial::Payload;

/// A Bernoulli sample of the distinct labels observed by a sketch (one
/// trial's sample, exported with its provenance).
///
/// ```
/// use gt_core::{DistinctSketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut s = DistinctSketch::new(&cfg, 7);
/// s.extend_labels(0..500);
/// let sample = s.distinct_sample(0);
/// assert_eq!(sample.inclusion_probability(), 1.0); // level 0: everything kept
/// // Horvitz–Thompson estimate of any Σ f over distinct labels:
/// assert_eq!(sample.estimate_sum(|_| 1.0), 500.0);
/// ```
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistinctSample {
    /// The sampled labels (each distinct label of the union appears here
    /// independently with probability [`DistinctSample::inclusion_probability`]).
    pub labels: Vec<u64>,
    /// The sampling level `l` the trial ended at.
    pub level: u8,
    /// Which trial of the sketch the sample came from.
    pub trial_index: usize,
}

impl DistinctSample {
    /// The probability with which each distinct label was included:
    /// `2^{-level}`.
    pub fn inclusion_probability(&self) -> f64 {
        2f64.powi(-(self.level as i32))
    }

    /// Horvitz–Thompson estimate of `Σ f(x)` over the distinct labels.
    pub fn estimate_sum(&self, f: impl Fn(u64) -> f64) -> f64 {
        let s: f64 = self.labels.iter().map(|&l| f(l)).sum();
        s / self.inclusion_probability()
    }

    /// Number of sampled labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

impl<V: Payload> GtSketch<V> {
    /// Export trial `trial_index`'s sample as a [`DistinctSample`].
    ///
    /// # Panics
    /// Panics if `trial_index ≥ trials()`.
    pub fn distinct_sample(&self, trial_index: usize) -> DistinctSample {
        let t = &self.trials()[trial_index];
        DistinctSample {
            labels: t.sample_iter().map(|(k, _)| k).collect(),
            level: t.level(),
            trial_index,
        }
    }

    /// Export every trial's sample (e.g. to average several HT estimates).
    pub fn distinct_samples(&self) -> Vec<DistinctSample> {
        (0..self.trials().len())
            .map(|i| self.distinct_sample(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {

    use crate::params::SketchConfig;
    use crate::sketch::DistinctSketch;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    #[test]
    fn level_zero_sample_is_the_whole_distinct_set() {
        let mut s = DistinctSketch::new(&cfg(), 1);
        let labels: Vec<u64> = (0..100).map(gt_hash::fold61).collect();
        s.extend_labels(labels.iter().copied());
        let sample = s.distinct_sample(0);
        assert_eq!(sample.level, 0);
        assert_eq!(sample.inclusion_probability(), 1.0);
        let mut got = sample.labels.clone();
        got.sort_unstable();
        let mut want = labels.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn ht_estimate_recovers_distinct_count() {
        let mut s = DistinctSketch::new(&cfg(), 2);
        let n = 40_000u64;
        s.extend_labels((0..n).map(gt_hash::fold61));
        let sample = s.distinct_sample(0);
        assert!(sample.level > 0, "should have promoted");
        let est = sample.estimate_sum(|_| 1.0);
        let rel = (est - n as f64).abs() / n as f64;
        // Single trial: looser tolerance than the median estimate.
        assert!(rel < 0.3, "est {est} rel {rel}");
    }

    #[test]
    fn samples_across_trials_are_independent() {
        let mut s = DistinctSketch::new(&cfg(), 3);
        s.extend_labels((0..50_000).map(gt_hash::fold61));
        let all = s.distinct_samples();
        assert_eq!(all.len(), s.config().trials());
        // Different trials use different hashes, so their samples differ.
        let a: std::collections::BTreeSet<u64> = all[0].labels.iter().copied().collect();
        let b: std::collections::BTreeSet<u64> = all[1].labels.iter().copied().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sample_of_empty_sketch_is_empty() {
        let s = DistinctSketch::new(&cfg(), 4);
        let sample = s.distinct_sample(0);
        assert!(sample.is_empty());
        assert_eq!(sample.len(), 0);
        assert_eq!(sample.estimate_sum(|_| 1.0), 0.0);
    }

    #[test]
    fn sample_is_identical_across_coordinated_parties() {
        // Two parties, same streams, same seeds → byte-identical samples.
        let mut a = DistinctSketch::new(&cfg(), 5);
        let mut b = DistinctSketch::new(&cfg(), 5);
        let labels: Vec<u64> = (0..10_000).map(gt_hash::fold61).collect();
        a.extend_labels(labels.iter().copied());
        b.extend_labels(labels.iter().rev().copied()); // different order!
        let mut sa = a.distinct_sample(0);
        let mut sb = b.distinct_sample(0);
        sa.labels.sort_unstable();
        sb.labels.sort_unstable();
        assert_eq!(sa, sb);
    }
}
