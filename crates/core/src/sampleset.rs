//! Fixed-capacity open-addressing map from labels to small payloads — the
//! per-trial sample store.
//!
//! The hot loop of the sketch is `insert(label)` on a set that is
//! *guaranteed* never to exceed a capacity fixed at construction time
//! (overflow triggers level promotion in the caller, never growth here).
//! That guarantee lets the store be a single flat allocation with
//! power-of-two sizing, ≤ 50 % load, linear probing and **no tombstones**:
//! the only deletion operation is bulk [`FixedCapMap::retain`], which
//! rebuilds the probe sequences in place. `std::collections::HashMap` would
//! carry SipHash, growth amortization and per-entry overhead the sketch
//! neither needs nor wants (see the Rust Performance Book's guidance on
//! replacing general-purpose containers on hot paths).
//!
//! Keys are labels in `[0, 2^61 − 1)`, so `u64::MAX` is free to serve as
//! the empty-slot sentinel. Probe positions are derived from `mix64(key)`
//! — a fixed bijective scrambler — so probe clustering is independent of
//! label structure *and* of the sketch's own seeded hash functions.

use gt_hash::mix64;

/// Outcome of [`FixedCapMap::try_insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was new and has been stored.
    Inserted,
    /// The key was already present; the stored payload is untouched.
    AlreadyPresent,
    /// The map is at capacity and the key is not present; nothing changed.
    /// The caller must make room (the sketch promotes its level) and retry.
    Full,
}

/// Empty-slot sentinel (not a valid label; labels live below `2^61 − 1`).
const EMPTY: u64 = u64::MAX;

/// A fixed-capacity open-addressing hash map `u64 → V`.
///
/// `V` is expected to be a small `Copy` payload (`()` for plain distinct
/// counting, a `u64` value for SumDistinct).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FixedCapMap<V> {
    keys: Vec<u64>,
    values: Vec<V>,
    /// Number of occupied slots.
    len: usize,
    /// Maximum number of entries this map will ever hold.
    capacity: usize,
    /// `keys.len() - 1`; table length is a power of two.
    mask: usize,
}

impl<V: Copy + Default> FixedCapMap<V> {
    /// Create a map that holds at most `capacity ≥ 1` entries.
    ///
    /// The backing table is sized to `2 · capacity` rounded up to a power
    /// of two, keeping load factor ≤ ½ so linear probe chains stay short.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        let table_len = (capacity * 2).next_power_of_two();
        FixedCapMap {
            keys: vec![EMPTY; table_len],
            values: vec![V::default(); table_len],
            len: 0,
            capacity,
            mask: table_len - 1,
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed entry capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the map is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Bytes of backing storage (space-accounting experiments).
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u64>() + self.values.len() * std::mem::size_of::<V>()
    }

    #[inline(always)]
    fn slot_of(&self, key: u64) -> usize {
        (mix64(key) as usize) & self.mask
    }

    /// Insert `key ↦ value` if there is room.
    ///
    /// Duplicate keys are detected and reported without modifying the
    /// stored payload — re-insertion of a label a party has already seen is
    /// the common case in duplicate-heavy streams and must be cheap.
    #[inline]
    pub fn try_insert(&mut self, key: u64, value: V) -> InsertOutcome {
        debug_assert!(
            key != EMPTY,
            "u64::MAX is the empty sentinel, not a valid label"
        );
        let mut idx = self.slot_of(key);
        loop {
            let k = self.keys[idx];
            if k == key {
                return InsertOutcome::AlreadyPresent;
            }
            if k == EMPTY {
                if self.len == self.capacity {
                    return InsertOutcome::Full;
                }
                self.keys[idx] = key;
                self.values[idx] = value;
                self.len += 1;
                return InsertOutcome::Inserted;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Payload stored for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        let mut idx = self.slot_of(key);
        loop {
            let k = self.keys[idx];
            if k == key {
                return Some(self.values[idx]);
            }
            if k == EMPTY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Apply `f` to the payload stored for `key`, if present. Returns
    /// whether the key was found. Cost: one probe chain.
    pub fn update(&mut self, key: u64, f: impl FnOnce(&mut V)) -> bool {
        let mut idx = self.slot_of(key);
        loop {
            let k = self.keys[idx];
            if k == key {
                f(&mut self.values[idx]);
                return true;
            }
            if k == EMPTY {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Keep only entries for which `pred` returns true, rebuilding probe
    /// sequences (this is the sub-sampling step of level promotion).
    ///
    /// Cost is `O(table)`; it runs at most `O(log F₀)` times over a trial's
    /// lifetime, so the amortized per-item cost stays constant.
    pub fn retain(&mut self, mut pred: impl FnMut(u64, &V) -> bool) {
        let table_len = self.keys.len();
        let mut survivors: Vec<(u64, V)> = Vec::with_capacity(self.len);
        for idx in 0..table_len {
            let k = self.keys[idx];
            if k != EMPTY && pred(k, &self.values[idx]) {
                survivors.push((k, self.values[idx]));
            }
        }
        self.keys.fill(EMPTY);
        self.len = 0;
        for (k, v) in survivors {
            let outcome = self.try_insert(k, v);
            debug_assert_eq!(outcome, InsertOutcome::Inserted);
        }
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Iterate over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
    }

    /// Iterate over keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Collect the entries into a `Vec` sorted by key.
    ///
    /// Iteration order of the open-addressed table depends on probe
    /// history, so callers that need a canonical order (the wire codec,
    /// the expression engine's per-trial views) sort once here instead of
    /// each imposing its own.
    pub fn sorted_entries(&self) -> Vec<(u64, V)> {
        let mut entries: Vec<(u64, V)> = self.iter().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries
    }
}

/// A fixed-capacity set of labels: a [`FixedCapMap`] with unit payloads.
pub type FixedCapSet = FixedCapMap<()>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut m = FixedCapMap::<u64>::with_capacity(8);
        assert_eq!(m.try_insert(5, 50), InsertOutcome::Inserted);
        assert_eq!(m.try_insert(6, 60), InsertOutcome::Inserted);
        assert!(m.contains(5));
        assert!(!m.contains(7));
        assert_eq!(m.get(6), Some(60));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_reported_and_keeps_first_payload() {
        let mut m = FixedCapMap::<u64>::with_capacity(4);
        assert_eq!(m.try_insert(9, 1), InsertOutcome::Inserted);
        assert_eq!(m.try_insert(9, 2), InsertOutcome::AlreadyPresent);
        assert_eq!(m.get(9), Some(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn full_map_rejects_new_keys_but_accepts_duplicates() {
        let mut m = FixedCapSet::with_capacity(2);
        assert_eq!(m.try_insert(1, ()), InsertOutcome::Inserted);
        assert_eq!(m.try_insert(2, ()), InsertOutcome::Inserted);
        assert!(m.is_full());
        assert_eq!(m.try_insert(3, ()), InsertOutcome::Full);
        assert_eq!(m.try_insert(1, ()), InsertOutcome::AlreadyPresent);
        assert_eq!(m.len(), 2);
        assert!(!m.contains(3));
    }

    #[test]
    fn capacity_one_works() {
        let mut m = FixedCapSet::with_capacity(1);
        assert_eq!(m.try_insert(7, ()), InsertOutcome::Inserted);
        assert_eq!(m.try_insert(8, ()), InsertOutcome::Full);
        m.retain(|_, _| false);
        assert_eq!(m.try_insert(8, ()), InsertOutcome::Inserted);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        FixedCapSet::with_capacity(0);
    }

    #[test]
    fn retain_keeps_matching_entries_reachable() {
        let mut m = FixedCapMap::<u64>::with_capacity(64);
        for k in 0..64u64 {
            assert_eq!(m.try_insert(k, k * 10), InsertOutcome::Inserted);
        }
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 32);
        for k in 0..64u64 {
            if k % 2 == 0 {
                assert_eq!(m.get(k), Some(k * 10), "lost key {k}");
            } else {
                assert!(!m.contains(k), "kept key {k}");
            }
        }
    }

    #[test]
    fn retain_fixes_probe_chains_across_removals() {
        // Force a dense cluster, remove the middle of chains, and verify
        // lookups still find everything (the tombstone-free rebuild).
        let mut m = FixedCapSet::with_capacity(128);
        let keys: Vec<u64> = (0..128).map(|i| i * 1_000_003).collect();
        for &k in &keys {
            assert_eq!(m.try_insert(k, ()), InsertOutcome::Inserted);
        }
        m.retain(|k, _| k % 3 != 1);
        for &k in &keys {
            assert_eq!(m.contains(k), k % 3 != 1, "key {k}");
        }
        // And new inserts go to the right place afterwards.
        assert_eq!(m.try_insert(u64::MAX - 1, ()), InsertOutcome::Inserted);
        assert!(m.contains(u64::MAX - 1));
    }

    #[test]
    fn clear_empties_everything() {
        let mut m = FixedCapMap::<u64>::with_capacity(16);
        for k in 0..16 {
            m.try_insert(k, k).unwrap_outcome();
        }
        m.clear();
        assert!(m.is_empty());
        for k in 0..16 {
            assert!(!m.contains(k));
        }
        // Reusable after clear.
        assert_eq!(m.try_insert(3, 33), InsertOutcome::Inserted);
    }

    #[test]
    fn iter_yields_exactly_the_entries() {
        let mut m = FixedCapMap::<u64>::with_capacity(32);
        for k in 100..120u64 {
            m.try_insert(k, k + 1);
        }
        let mut got: Vec<(u64, u64)> = m.iter().collect();
        got.sort_unstable();
        let expect: Vec<(u64, u64)> = (100..120u64).map(|k| (k, k + 1)).collect();
        assert_eq!(got, expect);
        assert_eq!(m.keys().count(), 20);
    }

    #[test]
    fn load_factor_is_at_most_half() {
        for cap in [1usize, 2, 3, 7, 64, 100, 1000] {
            let m = FixedCapSet::with_capacity(cap);
            assert!(m.keys.len() >= 2 * cap, "cap {cap}: table {}", m.keys.len());
            assert!(m.keys.len().is_power_of_two());
        }
    }

    #[test]
    fn heap_bytes_counts_both_arrays() {
        let m = FixedCapMap::<u64>::with_capacity(100);
        // Table = 256 slots; 8 bytes keys + 8 bytes values each.
        assert_eq!(m.heap_bytes(), 256 * 16);
        let s = FixedCapSet::with_capacity(100);
        assert_eq!(s.heap_bytes(), 256 * 8);
    }

    #[test]
    fn adversarial_probe_collisions_still_resolve() {
        // Keys chosen to collide in low bits pre-mix; mix64 must spread them.
        let mut m = FixedCapSet::with_capacity(256);
        for i in 0..256u64 {
            let k = i << 32; // identical low 32 bits
            assert_eq!(m.try_insert(k, ()), InsertOutcome::Inserted);
        }
        for i in 0..256u64 {
            assert!(m.contains(i << 32));
        }
    }

    trait UnwrapOutcome {
        fn unwrap_outcome(self);
    }
    impl UnwrapOutcome for InsertOutcome {
        fn unwrap_outcome(self) {
            assert_eq!(self, InsertOutcome::Inserted);
        }
    }
}
