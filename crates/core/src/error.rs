//! Error types for sketch construction and combination.

/// Errors produced by sketch configuration and merging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SketchError {
    /// A configuration parameter was out of its valid range.
    InvalidConfig {
        /// Which parameter was rejected.
        parameter: &'static str,
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
    /// Two sketches could not be merged because they were built from
    /// different seed material — their samples are not coordinated, and a
    /// union of them would be meaningless.
    SeedMismatch,
    /// Two sketches could not be merged because their shapes differ
    /// (trial count or per-trial capacity).
    ConfigMismatch {
        /// Description of the differing dimension.
        detail: String,
    },
    /// A label lay outside the `[0, 2^61 − 1)` universe. Fold larger labels
    /// with `gt_hash::fold61` (or use the `insert_hashed` APIs).
    LabelOutOfRange {
        /// The offending label.
        label: u64,
    },
    /// A union was requested over zero summaries. There is no neutral
    /// element to return: a sketch needs a config and seed, and an empty
    /// slice carries neither.
    EmptyUnion,
    /// A worker thread spawned by a parallel build or merge panicked. The
    /// panic is caught at the join and surfaced as this error — a poisoned
    /// worker closure must not abort the whole process — so callers can
    /// fall back to a sequential path or fail the one request.
    WorkerPanicked,
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration: {parameter}: {reason}")
            }
            SketchError::SeedMismatch => {
                write!(
                    f,
                    "cannot merge sketches built from different seeds (samples are uncoordinated)"
                )
            }
            SketchError::ConfigMismatch { detail } => {
                write!(f, "cannot merge sketches with different shapes: {detail}")
            }
            SketchError::LabelOutOfRange { label } => {
                write!(
                    f,
                    "label {label} outside the [0, 2^61-1) universe; fold it with gt_hash::fold61"
                )
            }
            SketchError::EmptyUnion => {
                write!(
                    f,
                    "cannot union zero summaries: no config/seed to build a result from"
                )
            }
            SketchError::WorkerPanicked => {
                write!(f, "a parallel worker thread panicked; result discarded")
            }
        }
    }
}

impl std::error::Error for SketchError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SketchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SketchError::InvalidConfig {
            parameter: "epsilon",
            reason: "must be in (0, 1)".into(),
        };
        assert!(e.to_string().contains("epsilon"));
        assert!(SketchError::SeedMismatch
            .to_string()
            .contains("uncoordinated"));
        let e = SketchError::ConfigMismatch {
            detail: "trials 4 vs 8".into(),
        };
        assert!(e.to_string().contains("trials 4 vs 8"));
        assert!(SketchError::LabelOutOfRange { label: u64::MAX }
            .to_string()
            .contains("fold"));
        assert!(SketchError::EmptyUnion.to_string().contains("zero"));
        assert!(SketchError::WorkerPanicked.to_string().contains("panicked"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SketchError::SeedMismatch);
    }
}
