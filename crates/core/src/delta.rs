//! Incremental delta extraction between two snapshots of one party's
//! sketch — the `gt-core` half of the continuous-monitoring plane.
//!
//! The paper's model ships each party's summary once, at the end.
//! Continuous monitoring re-ships it periodically, paying
//! `O(summary)` bytes per refresh even when almost nothing changed. The
//! delta plane pays `O(changes)` instead: a party that holds an
//! acknowledged **base** snapshot and a **current** sketch emits only
//! the per-trial *difference* — the new level (level raises are
//! monotone), the new item counter, and the labels that are in the
//! current sample but would not be reconstructed from the base.
//!
//! ## Why this is exact, not approximate
//!
//! A party's sketch evolves cumulatively: the current state is what the
//! base would become after observing more of the same stream. Per trial,
//! the GT sample is a *deterministic* function of the observed label set
//! and the (monotone) level: `S = {x observed : lvl(x) ≥ level}`,
//! `|S| ≤ c`. Hence every base entry that still qualifies at the current
//! level is still in the current sample, and
//!
//! ```text
//! current = subsample(base, current.level) ∪ delta.entries
//! ```
//!
//! holds with equality — [`apply_delta`] rebuilds the current snapshot
//! **bitwise**, payloads included (payload merges are reconciled with
//! the canonical `stored.merge(incoming)` order, so keep-first and
//! max-merge payloads land exactly where a fresh decode would put
//! them). [`delta_between`] verifies the prefix property instead of
//! assuming it and reports [`SketchError::ConfigMismatch`] when the
//! snapshots do not lie on one party's timeline; callers fall back to
//! shipping a full frame.
//!
//! The delta itself is represented as a [`GtSketch`] whose trials carry
//! the current levels and item counters but only the difference
//! entries. That makes it directly encodable by the canonical wire
//! codec (every entry qualifies at its trial's level, counts fit
//! capacity), so the delta plane reuses the codec's validation,
//! canonical byte-string property, and fingerprinting wholesale. A
//! delta sketch is a *transport* artifact: its own estimates are
//! meaningless and it must only ever be fed to [`apply_delta`].

use std::collections::HashMap;

use gt_hash::LevelHasher;

use crate::error::{Result, SketchError};
use crate::sketch::GtSketch;
use crate::trial::Payload;

fn check_coordinated<V: Payload>(a: &GtSketch<V>, b: &GtSketch<V>) -> Result<()> {
    if a.master_seed() != b.master_seed() {
        return Err(SketchError::SeedMismatch);
    }
    if a.config() != b.config() {
        return Err(SketchError::ConfigMismatch {
            detail: format!("{:?} vs {:?}", a.config(), b.config()),
        });
    }
    Ok(())
}

/// Extract the per-trial difference that turns `base` into `current`.
///
/// Both sketches must be coordinated (same config and master seed) and
/// must be successive snapshots of **one** party's stream: levels may
/// only rise, and every base entry still qualifying at the current
/// level must still be present. Violations return
/// [`SketchError::ConfigMismatch`] — the caller's cue to ship a full
/// frame instead.
///
/// Entries whose payload changed between the snapshots (e.g. a
/// [`crate::LatestTs`] refreshed by a re-arrival) are included with the
/// current payload; [`apply_delta`] reconciles them through the
/// canonical `stored.merge(incoming)` order.
pub fn delta_between<V: Payload + PartialEq>(
    base: &GtSketch<V>,
    current: &GtSketch<V>,
) -> Result<GtSketch<V>> {
    check_coordinated(base, current)?;
    let mut states = Vec::with_capacity(current.trials().len());
    let mut base_map: HashMap<u64, V> = HashMap::new();
    for (b, c) in base.trials().iter().zip(current.trials()) {
        if c.level() < b.level() {
            return Err(SketchError::ConfigMismatch {
                detail: format!(
                    "delta base at level {} is ahead of current level {} (not a prefix)",
                    b.level(),
                    c.level()
                ),
            });
        }
        base_map.clear();
        base_map.extend(b.sample_iter());
        // Prefix check: a base entry that qualifies at the current level
        // must have survived into the current sample.
        for (&label, _) in base_map.iter() {
            if b.hasher().level(label) >= c.level() && !c.contains_label(label) {
                return Err(SketchError::ConfigMismatch {
                    detail: format!(
                        "base entry {label} qualifies at level {} but left the sample \
                         (base is not a prefix of current)",
                        c.level()
                    ),
                });
            }
        }
        let mut entries: Vec<(u64, V)> = c
            .sample_iter()
            .filter(|(label, payload)| base_map.get(label) != Some(payload))
            .collect();
        entries.sort_unstable_by_key(|&(label, _)| label);
        states.push((c.level(), c.items_observed(), entries));
    }
    GtSketch::reassemble(current.config(), current.master_seed(), states)
}

/// Apply a delta produced by [`delta_between`] onto `base`, rebuilding
/// the successor snapshot in place — bitwise identical to the sketch
/// the delta was extracted from.
///
/// Per trial: subsample the base to the delta's (monotone) level, merge
/// the delta entries with the canonical `stored.merge(incoming)`
/// payload order, and adopt the delta's absolute item counter. The
/// cumulative-stream argument in the module docs is what makes this
/// reconstruction exact; the reload path re-validates the sample
/// invariant, so a delta applied against the wrong base surfaces as
/// [`SketchError::InvalidConfig`] rather than a silently wrong sketch.
///
/// A delta also applies exactly on top of any **later** base from the
/// same timeline (base generation ≤ referee's generation ≤ delta
/// generation): the delta carries every change since its coded base,
/// so entries the newer base already holds merge idempotently. This is
/// what lets a referee whose ack was lost keep applying the party's
/// retransmitted cumulative deltas without rewinding.
///
/// On `Err`, `base` may be partially updated; discard or resync it.
pub fn apply_delta<V: Payload>(base: &mut GtSketch<V>, delta: &GtSketch<V>) -> Result<()> {
    check_coordinated(base, delta)?;
    let capacity = base.config().capacity();
    let mut merged: HashMap<u64, V> = HashMap::with_capacity(capacity);
    let mut scratch: Vec<(u64, V)> = Vec::with_capacity(capacity);
    for index in 0..base.trials().len() {
        let b = &base.trials()[index];
        let d = &delta.trials()[index];
        if d.level() < b.level() {
            return Err(SketchError::ConfigMismatch {
                detail: format!(
                    "delta at level {} is staler than base level {}",
                    d.level(),
                    b.level()
                ),
            });
        }
        merged.clear();
        merged.extend(
            b.sample_iter()
                .filter(|&(label, _)| b.hasher().level(label) >= d.level()),
        );
        for (label, incoming) in d.sample_iter() {
            merged
                .entry(label)
                .and_modify(|stored| *stored = stored.merge(incoming))
                .or_insert(incoming);
        }
        if merged.len() > capacity {
            return Err(SketchError::InvalidConfig {
                parameter: "sample",
                reason: format!(
                    "delta application overflows capacity {capacity} with {} entries \
                     (delta coded against a different base)",
                    merged.len()
                ),
            });
        }
        scratch.clear();
        scratch.extend(merged.iter().map(|(&label, &payload)| (label, payload)));
        base.reload_trial(index, d.level(), d.items_observed(), scratch.iter().copied())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SketchConfig;
    use crate::recency::LatestTs;
    use crate::DistinctSketch;

    fn cfg() -> SketchConfig {
        SketchConfig::from_shape(0.2, 0.2, 64, 5, gt_hash::HashFamilyKind::Pairwise).unwrap()
    }

    /// Canonical comparable view of a sketch: per-trial (level, items,
    /// sorted entries).
    fn state<V: Payload + std::fmt::Debug + Ord>(s: &GtSketch<V>) -> Vec<(u8, u64, Vec<(u64, V)>)> {
        s.trials()
            .iter()
            .map(|t| {
                let mut entries: Vec<(u64, V)> = t.sample_iter().collect();
                entries.sort_unstable();
                (t.level(), t.items_observed(), entries)
            })
            .collect()
    }

    #[test]
    fn delta_reconstructs_the_current_snapshot_bitwise() {
        let config = cfg();
        let mut s = DistinctSketch::new(&config, 7);
        s.extend_labels((0..500u64).map(gt_hash::fold61));
        let base = s.clone();
        s.extend_labels((400..5_000u64).map(gt_hash::fold61)); // forces level raises
        let delta = delta_between(&base, &s).unwrap();
        let mut rebuilt = base.clone();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(state(&rebuilt), state(&s));
    }

    #[test]
    fn empty_evolution_yields_an_empty_delta() {
        let config = cfg();
        let mut s = DistinctSketch::new(&config, 3);
        s.extend_labels((0..2_000u64).map(gt_hash::fold61));
        let base = s.clone();
        // Re-observe only existing labels: samples and levels unchanged,
        // only item counters move.
        s.extend_labels((0..100u64).map(gt_hash::fold61));
        let delta = delta_between(&base, &s).unwrap();
        assert_eq!(delta.sample_entries(), 0, "steady state must cost no entries");
        let mut rebuilt = base.clone();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(state(&rebuilt), state(&s));
    }

    #[test]
    fn empty_base_delta_is_the_full_snapshot() {
        let config = cfg();
        let base = DistinctSketch::new(&config, 11);
        let mut s = base.clone();
        s.extend_labels((0..3_000u64).map(gt_hash::fold61));
        let delta = delta_between(&base, &s).unwrap();
        assert_eq!(delta.sample_entries(), s.sample_entries());
        let mut rebuilt = base.clone();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(state(&rebuilt), state(&s));
    }

    #[test]
    fn payload_changes_travel_in_the_delta() {
        let config = cfg();
        let mut s = GtSketch::<LatestTs>::new(&config, 5);
        for t in 0..200u64 {
            s.insert_merging_with(gt_hash::fold61(t), LatestTs(t));
        }
        let base = s.clone();
        // Re-arrivals refresh timestamps without adding labels.
        for t in 0..50u64 {
            s.insert_merging_with(gt_hash::fold61(t), LatestTs(1_000 + t));
        }
        let delta = delta_between(&base, &s).unwrap();
        assert!(delta.sample_entries() > 0, "ts refreshes must be carried");
        let mut rebuilt = base.clone();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(state(&rebuilt), state(&s));
    }

    #[test]
    fn cumulative_delta_applies_on_an_intermediate_base() {
        // The lost-ack scenario: the referee applied g1 but the party's
        // delta is coded against its acked base g0. The cumulative delta
        // g0 -> g2 must still land exactly on the g1 base.
        let config = cfg();
        let mut s = DistinctSketch::new(&config, 13);
        s.extend_labels((0..300u64).map(gt_hash::fold61));
        let g0 = s.clone();
        s.extend_labels((300..1_200u64).map(gt_hash::fold61));
        let g1 = s.clone();
        s.extend_labels((1_200..4_000u64).map(gt_hash::fold61));
        let delta = delta_between(&g0, &s).unwrap();
        let mut rebuilt = g1.clone();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(state(&rebuilt), state(&s));
    }

    #[test]
    fn unrelated_snapshots_are_rejected() {
        let config = cfg();
        let mut a = DistinctSketch::new(&config, 17);
        let mut b = DistinctSketch::new(&config, 17);
        // Drive `a` far enough that some of its retained labels no
        // longer appear in `b` even at b's level: a is not a prefix.
        a.extend_labels((0..5_000u64).map(gt_hash::fold61));
        b.extend_labels((10_000..10_040u64).map(gt_hash::fold61));
        assert!(
            delta_between(&a, &b).is_err(),
            "level regression or prefix violation must be reported"
        );
    }

    #[test]
    fn uncoordinated_snapshots_are_rejected() {
        let a = DistinctSketch::new(&cfg(), 1);
        let b = DistinctSketch::new(&cfg(), 2);
        assert!(matches!(
            delta_between(&a, &b),
            Err(SketchError::SeedMismatch)
        ));
        let mut a2 = a.clone();
        assert!(matches!(
            apply_delta(&mut a2, &b),
            Err(SketchError::SeedMismatch)
        ));
    }

    #[test]
    fn refresh_merge_counts_each_snapshot_once() {
        // merge_refresh_from: union absorbs successive snapshots of one
        // party but its item counters must equal a single merge of the
        // latest snapshot.
        let config = cfg();
        let mut party = DistinctSketch::new(&config, 23);
        party.extend_labels((0..800u64).map(gt_hash::fold61));
        let snap1 = party.clone();
        party.extend_labels((800..2_000u64).map(gt_hash::fold61));
        let snap2 = party.clone();

        let mut live = DistinctSketch::new(&config, 23);
        live.merge_from(&snap1).unwrap();
        let old_items: Vec<u64> = snap1.trials().iter().map(|t| t.items_observed()).collect();
        live.merge_refresh_from(&snap2, &old_items).unwrap();

        let mut fresh = DistinctSketch::new(&config, 23);
        fresh.merge_from(&snap2).unwrap();
        assert_eq!(state(&live), state(&fresh));
    }
}
