//! The mergeable-summary abstraction and n-way union helpers.
//!
//! Mergeability is the property the paper's model runs on: each party ships
//! its summary to a referee, and the referee combines `t` summaries into one
//! that is *exactly* what a single observer of the concatenated streams
//! would hold. Everything in this workspace that has that property — the
//! GT sketches here, and the mergeable baselines (PCSA, LogLog, KMV, linear
//! counting) — implements [`Mergeable`], so referees, runners and
//! experiments can be written once.

use crate::error::{Result, SketchError};
use crate::workers::{balanced_chunks, effective_workers, run_workers};

/// A summary that supports lossless union with peers built from the same
/// configuration/seed material.
pub trait Mergeable: Sized {
    /// Fold `other` into `self`. Must be commutative and idempotent up to
    /// estimator-relevant state, and must fail (rather than silently
    /// corrupt) on uncoordinated inputs.
    fn merge_from(&mut self, other: &Self) -> Result<()>;
}

/// Union a non-empty slice of summaries into one, by left fold.
///
/// The referee-side cost is `O(t · c)` for `t` parties with summaries of
/// size `c` — independent of any stream's length, which is experiment
/// E10's claim.
///
/// # Errors
/// [`SketchError::EmptyUnion`] on an empty slice (there is no neutral
/// summary to return), plus any error propagated from a pairwise merge.
pub fn merge_all<T: Mergeable + Clone>(summaries: &[T]) -> Result<T> {
    let (first, rest) = summaries.split_first().ok_or(SketchError::EmptyUnion)?;
    let mut acc = first.clone();
    for s in rest {
        acc.merge_from(s)?;
    }
    Ok(acc)
}

/// Below this many summaries, [`merge_tree`] runs the sequential fold —
/// thread spawn/join overhead dominates a handful of `O(c)` merges.
pub const MERGE_TREE_CROSSOVER: usize = 16;

/// Union a non-empty slice of summaries by balanced tree reduction on
/// scoped worker threads, producing a result identical to the sequential
/// left fold of [`merge_all`].
///
/// Why reassociating is safe: a merged trial's level is the minimal level
/// `≥` every operand's that fits the qualifying union in capacity, and its
/// sample is exactly the qualifying subset of the union — both independent
/// of parenthesization. Payload reconciliation is `stored.merge(incoming)`
/// (earliest operand wins for the keep-first payloads), so the tree
/// preserves the left-to-right operand order: workers fold *contiguous*
/// chunks and layers pair *adjacent* accumulators, never commuting
/// operands. DESIGN.md §12 carries the full argument.
///
/// # Errors
/// [`SketchError::EmptyUnion`] on an empty slice,
/// [`SketchError::WorkerPanicked`] if a reduction worker panics, plus any
/// propagated merge error.
pub fn merge_tree<T: Mergeable + Clone + Send + Sync>(summaries: &[T]) -> Result<T> {
    merge_tree_exact(summaries, effective_workers())
}

/// [`merge_tree`] with an explicit worker count, bypassing the
/// [`effective_workers`] clamp — how the tests drive the chunked reduction
/// on single-core hosts. The crossover still applies.
pub(crate) fn merge_tree_exact<T: Mergeable + Clone + Send + Sync>(
    summaries: &[T],
    workers: usize,
) -> Result<T> {
    if summaries.is_empty() {
        return Err(SketchError::EmptyUnion);
    }
    if summaries.len() < MERGE_TREE_CROSSOVER || workers < 2 {
        return merge_all(summaries);
    }
    // Fan out: fold contiguous chunks in parallel (order within a chunk is
    // the sequential order, so payload reconciliation matches the fold).
    let mut layer: Vec<T> = run_workers(balanced_chunks(summaries, workers), merge_all)?
        .into_iter()
        .collect::<Result<Vec<T>>>()?;
    // Reduce: pair *adjacent* accumulators until one remains.
    while layer.len() > 1 {
        let pairs: Vec<(T, Option<T>)> = {
            let mut it = layer.into_iter();
            let mut out = Vec::new();
            while let Some(a) = it.next() {
                out.push((a, it.next()));
            }
            out
        };
        layer = run_workers(pairs, |(mut a, b)| -> Result<T> {
            if let Some(b) = b {
                a.merge_from(&b)?;
            }
            Ok(a)
        })?
        .into_iter()
        .collect::<Result<Vec<T>>>()?;
    }
    Ok(layer.pop().expect("non-empty by construction"))
}

impl<V: crate::trial::Payload> Mergeable for crate::sketch::GtSketch<V> {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        GtSketch::merge_from(self, other)
    }
}

use crate::sketch::GtSketch;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SketchConfig;
    use crate::sketch::DistinctSketch;

    fn labels(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(gt_hash::fold61)
    }

    #[test]
    fn merge_all_many_parties_equals_one_observer() {
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let t = 8;
        let per_party = 4_000u64;
        let mut parties = Vec::new();
        let mut whole = DistinctSketch::new(&config, 42);
        for p in 0..t {
            let mut s = DistinctSketch::new(&config, 42);
            let range = (p * per_party)..((p + 2) * per_party).min(t * per_party); // overlapping
            s.extend_labels(labels(range.clone()));
            whole.extend_labels(labels(range));
            parties.push(s);
        }
        let union = merge_all(&parties).unwrap();
        assert_eq!(
            union.estimate_distinct().value,
            whole.estimate_distinct().value
        );
        assert_eq!(union.sample_entries(), whole.sample_entries());
    }

    #[test]
    fn merge_all_single_summary_is_identity() {
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let mut s = DistinctSketch::new(&config, 7);
        s.extend_labels(labels(0..500));
        let out = merge_all(std::slice::from_ref(&s)).unwrap();
        assert_eq!(out.estimate_distinct().value, s.estimate_distinct().value);
    }

    #[test]
    fn merge_all_empty_is_an_error_not_a_panic() {
        assert_eq!(
            merge_all::<DistinctSketch>(&[]).unwrap_err(),
            crate::error::SketchError::EmptyUnion
        );
        assert_eq!(
            merge_tree::<DistinctSketch>(&[]).unwrap_err(),
            crate::error::SketchError::EmptyUnion
        );
    }

    #[test]
    fn merge_tree_matches_sequential_fold_across_the_crossover() {
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        for t in [
            1usize,
            2,
            MERGE_TREE_CROSSOVER - 1,
            MERGE_TREE_CROSSOVER,
            37,
        ] {
            let parties: Vec<DistinctSketch> = (0..t as u64)
                .map(|p| {
                    let mut s = DistinctSketch::new(&config, 11);
                    s.extend_labels(labels(p * 300..(p + 2) * 300));
                    s
                })
                .collect();
            let seq = merge_all(&parties).unwrap();
            let tree = merge_tree(&parties).unwrap();
            assert_eq!(tree.sample_entries(), seq.sample_entries(), "t = {t}");
            assert_eq!(tree.items_observed(), seq.items_observed(), "t = {t}");
            assert_eq!(
                tree.estimate_distinct().value,
                seq.estimate_distinct().value,
                "t = {t}"
            );
        }
    }

    #[test]
    fn merge_tree_propagates_coordination_errors() {
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let mut parties: Vec<DistinctSketch> = (0..MERGE_TREE_CROSSOVER as u64 + 4)
            .map(|_| DistinctSketch::new(&config, 1))
            .collect();
        parties.push(DistinctSketch::new(&config, 2)); // uncoordinated seed
        assert!(merge_tree(&parties).is_err());
    }

    #[test]
    fn merge_tree_exact_matches_fold_at_forced_worker_counts() {
        // `merge_tree` clamps to the host's cores; on a one-core runner it
        // always takes the sequential fold. Forcing worker counts keeps
        // the fan-out + adjacent-pair reduction exercised everywhere.
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let parties: Vec<DistinctSketch> = (0..MERGE_TREE_CROSSOVER as u64 + 7)
            .map(|p| {
                let mut s = DistinctSketch::new(&config, 11);
                s.extend_labels(labels(p * 300..(p + 2) * 300));
                s
            })
            .collect();
        let seq = merge_all(&parties).unwrap();
        for workers in [2, 3, 5, 8] {
            let tree = merge_tree_exact(&parties, workers).unwrap();
            assert_eq!(tree.sample_entries(), seq.sample_entries(), "w = {workers}");
            assert_eq!(tree.items_observed(), seq.items_observed(), "w = {workers}");
        }
    }

    #[test]
    fn poisoned_merge_worker_surfaces_as_error() {
        // A summary whose merge panics must fail the union with
        // WorkerPanicked, not abort the process from a referee thread.
        #[derive(Clone, Debug)]
        struct Poisoned;
        impl Mergeable for Poisoned {
            fn merge_from(&mut self, _other: &Self) -> Result<()> {
                panic!("poisoned merge");
            }
        }
        let parties = vec![Poisoned; MERGE_TREE_CROSSOVER + 4];
        assert_eq!(
            merge_tree_exact(&parties, 4).unwrap_err(),
            SketchError::WorkerPanicked
        );
    }

    #[test]
    fn merge_all_propagates_coordination_errors() {
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let a = DistinctSketch::new(&config, 1);
        let b = DistinctSketch::new(&config, 2);
        assert!(merge_all(&[a, b]).is_err());
    }
}
