//! The mergeable-summary abstraction and n-way union helpers.
//!
//! Mergeability is the property the paper's model runs on: each party ships
//! its summary to a referee, and the referee combines `t` summaries into one
//! that is *exactly* what a single observer of the concatenated streams
//! would hold. Everything in this workspace that has that property — the
//! GT sketches here, and the mergeable baselines (PCSA, LogLog, KMV, linear
//! counting) — implements [`Mergeable`], so referees, runners and
//! experiments can be written once.

use crate::error::Result;

/// A summary that supports lossless union with peers built from the same
/// configuration/seed material.
pub trait Mergeable: Sized {
    /// Fold `other` into `self`. Must be commutative and idempotent up to
    /// estimator-relevant state, and must fail (rather than silently
    /// corrupt) on uncoordinated inputs.
    fn merge_from(&mut self, other: &Self) -> Result<()>;
}

/// Union a non-empty slice of summaries into one, by left fold.
///
/// The referee-side cost is `O(t · c)` for `t` parties with summaries of
/// size `c` — independent of any stream's length, which is experiment
/// E10's claim.
pub fn merge_all<T: Mergeable + Clone>(summaries: &[T]) -> Result<T> {
    assert!(
        !summaries.is_empty(),
        "merge_all needs at least one summary"
    );
    let mut acc = summaries[0].clone();
    for s in &summaries[1..] {
        acc.merge_from(s)?;
    }
    Ok(acc)
}

impl<V: crate::trial::Payload> Mergeable for crate::sketch::GtSketch<V> {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        GtSketch::merge_from(self, other)
    }
}

use crate::sketch::GtSketch;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SketchConfig;
    use crate::sketch::DistinctSketch;

    fn labels(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(gt_hash::fold61)
    }

    #[test]
    fn merge_all_many_parties_equals_one_observer() {
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let t = 8;
        let per_party = 4_000u64;
        let mut parties = Vec::new();
        let mut whole = DistinctSketch::new(&config, 42);
        for p in 0..t {
            let mut s = DistinctSketch::new(&config, 42);
            let range = (p * per_party)..((p + 2) * per_party).min(t * per_party); // overlapping
            s.extend_labels(labels(range.clone()));
            whole.extend_labels(labels(range));
            parties.push(s);
        }
        let union = merge_all(&parties).unwrap();
        assert_eq!(
            union.estimate_distinct().value,
            whole.estimate_distinct().value
        );
        assert_eq!(union.sample_entries(), whole.sample_entries());
    }

    #[test]
    fn merge_all_single_summary_is_identity() {
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let mut s = DistinctSketch::new(&config, 7);
        s.extend_labels(labels(0..500));
        let out = merge_all(std::slice::from_ref(&s)).unwrap();
        assert_eq!(out.estimate_distinct().value, s.estimate_distinct().value);
    }

    #[test]
    #[should_panic(expected = "at least one summary")]
    fn merge_all_empty_panics() {
        let _ = merge_all::<DistinctSketch>(&[]);
    }

    #[test]
    fn merge_all_propagates_coordination_errors() {
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let a = DistinctSketch::new(&config, 1);
        let b = DistinctSketch::new(&config, 2);
        assert!(merge_all(&[a, b]).is_err());
    }
}
