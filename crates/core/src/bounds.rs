//! The paper's bounds as executable formulas.
//!
//! Experiments compare measurements against *predictions*; this module is
//! where the predictions live, so "claimed vs measured" is a diff between
//! two functions rather than prose. All formulas are per the standard
//! analysis of coordinated adaptive sampling:
//!
//! * A single trial with capacity `c` estimates `F₀` within `±ε` with
//!   failure probability bounded by Chebyshev over the pairwise-
//!   independent level indicators (see [`trial_failure_bound`]).
//! * The median of `r` trials fails only if ≥ half the trials fail; a
//!   Chernoff bound turns a per-trial failure rate `q < ½` into
//!   `exp(−r·(½ − q)²·2)` (Hoeffding form; see [`median_failure_bound`]).
//! * Space and message size follow mechanically from the shape.

use crate::params::SketchConfig;

/// Chebyshev bound on a single trial's failure probability
/// `Pr[|est − F₀| > ε·F₀]`, assuming the trial settles at a level where
/// the expected sample size is at least `c/4` (the steady state of the
/// doubling scheme; below that the estimate is exact or near-exact).
///
/// With pairwise-independent inclusions, `Var[|S|] ≤ E[|S|]`, so by
/// Chebyshev `Pr[|S − E| > ε·E] ≤ 1/(ε²·E) ≤ 4/(ε²·c)`.
pub fn trial_failure_bound(epsilon: f64, capacity: usize) -> f64 {
    assert!(epsilon > 0.0);
    assert!(capacity > 0);
    (4.0 / (epsilon * epsilon * capacity as f64)).min(1.0)
}

/// Hoeffding bound on the failure probability of the median of `r`
/// independent trials, each failing with probability at most `q`.
///
/// Returns 1.0 (vacuous) when `q ≥ ½` — the median cannot be argued to
/// concentrate without per-trial success majority.
pub fn median_failure_bound(q: f64, trials: usize) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    assert!(trials > 0);
    if q >= 0.5 {
        return 1.0;
    }
    let gap = 0.5 - q;
    (-2.0 * trials as f64 * gap * gap).exp().min(1.0)
}

/// The end-to-end analytic failure bound of a configuration: per-trial
/// Chebyshev composed with median Hoeffding.
///
/// Note the two regimes this exposes:
/// * **Provable**: `SketchConfig::with_constants(ε, δ, 36.0, 6.0)` makes
///   this bound ≤ δ outright (per-trial q ≤ 1/9, and
///   `exp(−2r(½−q)²) ≤ δ^1.8` at `r = 6·ln(1/δ)`).
/// * **Default**: the shipped `k = 12` makes the *Chebyshev* bound loose
///   (q ≤ 1/3) while the *measured* failure rate sits far below δ
///   (experiment E1 observes zero failures over 800 runs) — Chebyshev
///   charges for the worst variance pairwise independence permits, which
///   real hash draws don't exhibit. Users who need the certificate
///   rather than the measurement should pay the 3× memory for `k = 36`.
pub fn config_failure_bound(config: &SketchConfig) -> f64 {
    let q = trial_failure_bound(config.epsilon(), config.capacity());
    median_failure_bound(q, config.trials())
}

/// Predicted resident sample-slot ceiling, in entries.
pub fn predicted_entry_ceiling(config: &SketchConfig) -> usize {
    config.max_sample_entries()
}

/// Predicted in-memory footprint of the sample stores, in bytes: the
/// open-addressing table is `2c` slots rounded up to a power of two, at
/// 8 bytes per label slot, per trial. (Payload bytes are extra.)
pub fn predicted_heap_bytes(config: &SketchConfig) -> usize {
    config.trials() * (2 * config.capacity()).next_power_of_two() * 8
}

/// Predicted wire-message size in bytes for a *full* sketch over a
/// universe of `n` distinct labels: per trial, `c` sorted labels
/// delta-coded at ≈ `(61 − log₂ c)/7` bytes each, plus small framing.
///
/// A capacity estimate, accurate to ~15 % in practice (E9a measures
/// ≈ 6.5 B/entry for c ≈ 1200); used for capacity planning, not billing.
pub fn predicted_message_bytes(config: &SketchConfig) -> usize {
    let c = config.capacity() as f64;
    let gap_bits = 61.0 - c.log2();
    let bytes_per_entry = (gap_bits / 7.0).ceil().max(1.0);
    let framing = 40 + 4 * config.trials();
    (config.trials() as f64 * c * bytes_per_entry) as usize + framing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_bound_scales_inversely_with_capacity() {
        let a = trial_failure_bound(0.1, 400);
        let b = trial_failure_bound(0.1, 1600);
        assert!((a / b - 4.0).abs() < 1e-9);
        assert_eq!(trial_failure_bound(0.01, 1), 1.0); // clamped
    }

    #[test]
    fn median_bound_decays_geometrically() {
        // exp(−2rg²): equal trial increments multiply the bound by a
        // constant factor.
        let q = 0.25;
        let r5 = median_failure_bound(q, 5);
        let r10 = median_failure_bound(q, 10);
        let r15 = median_failure_bound(q, 15);
        assert!(
            (r10 / r5 - r15 / r10).abs() < 1e-9,
            "constant decay per +5 trials"
        );
        assert!(r15 < r10 && r10 < r5);
        assert_eq!(median_failure_bound(0.5, 99), 1.0);
        assert_eq!(median_failure_bound(0.7, 99), 1.0);
    }

    #[test]
    fn provable_constants_certify_delta() {
        // k = 36, r-constant 6: the fully analytic bound must be ≤ δ.
        for (eps, delta) in [(0.05, 0.05), (0.1, 0.05), (0.1, 0.01), (0.2, 0.1)] {
            let cfg = SketchConfig::with_constants(eps, delta, 36.0, 6.0).unwrap();
            let bound = config_failure_bound(&cfg);
            assert!(bound <= delta, "eps {eps} delta {delta}: bound {bound}");
        }
    }

    #[test]
    fn default_constants_trade_certificate_for_memory() {
        // Documented trade-off: the default k = 12 leaves the Chebyshev
        // certificate loose (> δ) while E1 measures ~zero failures. If
        // this test ever fails in the other direction, the defaults can
        // be tightened for free.
        let cfg = SketchConfig::new(0.05, 0.05).unwrap();
        let bound = config_failure_bound(&cfg);
        assert!(
            bound > 0.05,
            "defaults now certify δ — revisit docs: {bound}"
        );
        // The provable shape costs exactly 3× the capacity.
        let provable = SketchConfig::with_constants(0.05, 0.05, 36.0, 6.0).unwrap();
        assert_eq!(provable.capacity(), cfg.capacity() * 3);
    }

    #[test]
    fn heap_prediction_matches_measurement() {
        let cfg = SketchConfig::new(0.1, 0.05).unwrap();
        let mut s = crate::DistinctSketch::new(&cfg, 1);
        s.extend_labels((0..50_000u64).map(gt_hash::fold61));
        assert_eq!(s.heap_bytes(), predicted_heap_bytes(&cfg));
    }

    #[test]
    fn entry_ceiling_is_never_exceeded() {
        let cfg = SketchConfig::new(0.2, 0.2).unwrap();
        let mut s = crate::DistinctSketch::new(&cfg, 2);
        s.extend_labels((0..100_000u64).map(gt_hash::fold61));
        assert!(s.sample_entries() <= predicted_entry_ceiling(&cfg));
    }

    #[test]
    fn message_prediction_is_in_the_right_ballpark() {
        // Can't check against the codec here (it lives in gt-streams), but
        // the E9a measurement of ~6.5 B/entry at c = 1200 pins the scale.
        let cfg = SketchConfig::new(0.1, 0.05).unwrap(); // c = 1200, r = 19
        let predicted = predicted_message_bytes(&cfg);
        let measured_scale = (cfg.max_sample_entries() as f64 * 6.5) as usize;
        let ratio = predicted as f64 / measured_scale as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "predicted {predicted} vs ~{measured_scale}"
        );
    }
}
