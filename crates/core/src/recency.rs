//! Landmark-window recency queries: "how many distinct labels have been
//! seen **since time t**?" for any `t` chosen at query time.
//!
//! This is a first step toward the authors' follow-up line of work
//! (sliding-window and time-decaying distinct counting, SPAA 2002 and
//! onward), built entirely out of this paper's machinery: attach each
//! label's **latest arrival timestamp** as its payload (merged by `max`
//! on duplicates and across parties), and answer recency queries as
//! predicate-restricted counts over the coordinated sample.
//!
//! ## Semantics and guarantee
//!
//! The sample is a level-`l` Bernoulli sample of the distinct labels, and
//! each sampled label carries its true latest timestamp (every arrival of
//! an in-sample label updates it; labels evicted by level promotion were
//! dropped independently of time). Hence
//! `|{x ∈ S : ts(x) ≥ t}| · 2^l` is an unbiased estimator of
//! `|{distinct x : latest arrival ≥ t}|`, with the same additive
//! `± ε·F₀(total)` error as any predicate query (experiment E13).
//!
//! This is a **landmark** window (state never expires), not the
//! follow-up's sliding window (which evicts by timestamp to bound space
//! for `t → now`): old labels still occupy sample slots. It answers the
//! same queries exactly when total distinct labels fit the configured
//! space budget — and degrades to additive error beyond it.

use crate::error::Result;
use crate::estimate::{median_f64, Estimate};
use crate::params::SketchConfig;
use crate::sketch::GtSketch;
use crate::trial::Payload;

/// A latest-arrival timestamp, merged by `max`.
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct LatestTs(pub u64);

impl Payload for LatestTs {
    #[inline]
    fn merge(self, other: Self) -> Self {
        LatestTs(self.0.max(other.0))
    }
}

/// A distinct-count sketch that also answers "distinct since `t`".
///
/// ```
/// use gt_core::{RecencySketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut s = RecencySketch::new(&cfg, 7);
/// s.insert(10, 100); // label 10 at t=100
/// s.insert(11, 200);
/// s.insert(10, 300); // label 10 comes back later
/// assert_eq!(s.estimate_distinct_since(250).value, 1.0); // only label 10
/// assert_eq!(s.estimate_distinct().value, 2.0);
/// ```
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RecencySketch {
    inner: GtSketch<LatestTs>,
}

impl RecencySketch {
    /// Create an empty sketch; same coordination contract as
    /// [`crate::DistinctSketch`].
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        RecencySketch {
            inner: GtSketch::new(config, master_seed),
        }
    }

    /// Observe `label` arriving at `timestamp`. Timestamps may arrive in
    /// any order (out-of-order streams keep the max per label).
    #[inline]
    pub fn insert(&mut self, label: u64, timestamp: u64) {
        self.inner.insert_merging_with(label, LatestTs(timestamp));
    }

    /// `(ε, δ)`-estimate of all distinct labels ever observed.
    pub fn estimate_distinct(&self) -> Estimate {
        self.inner.estimate_distinct()
    }

    /// Estimate of distinct labels whose **latest** arrival is at or
    /// after `since`. Unbiased; additive `± ε·F₀(total)` error with
    /// probability `1 − δ` (module docs).
    pub fn estimate_distinct_since(&self, since: u64) -> Estimate {
        estimate_distinct_since_on(&self.inner, since)
    }

    /// Union with another party's sketch: per-label latest timestamps are
    /// reconciled by `max`, so the union answers recency queries over the
    /// combined streams.
    pub fn merge_from(&mut self, other: &RecencySketch) -> Result<()> {
        self.inner.merge_from(&other.inner)
    }

    /// Union as a new sketch.
    pub fn merged(&self, other: &RecencySketch) -> Result<RecencySketch> {
        let mut out = self.clone();
        out.merge_from(other)?;
        Ok(out)
    }

    /// Items observed (duplicates included).
    pub fn items_observed(&self) -> u64 {
        self.inner.items_observed()
    }

    /// The underlying generic sketch.
    pub fn inner(&self) -> &GtSketch<LatestTs> {
        &self.inner
    }
}

/// Recency estimate over any timestamp-carrying sketch — the estimator
/// behind [`RecencySketch::estimate_distinct_since`], exposed as a free
/// function so aggregators that hold a raw `GtSketch<LatestTs>` (e.g. a
/// referee's live union fed by the delta plane) can answer the same
/// query without re-wrapping.
pub fn estimate_distinct_since_on(sketch: &GtSketch<LatestTs>, since: u64) -> Estimate {
    let mut per_trial: Vec<f64> = sketch
        .trials()
        .iter()
        .map(|t| {
            let hits = t.sample_iter().filter(|&(_, ts)| ts.0 >= since).count();
            hits as f64 * 2f64.powi(t.level() as i32)
        })
        .collect();
    Estimate {
        value: median_f64(&mut per_trial),
        epsilon: sketch.config().epsilon(),
        delta: sketch.config().delta(),
    }
}

impl crate::merge::Mergeable for RecencySketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        RecencySketch::merge_from(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = RecencySketch::new(&cfg(), 1);
        // Labels 0..100 at t = label; re-arrivals move timestamps forward.
        for i in 0..100u64 {
            s.insert(gt_hash::fold61(i), i);
        }
        assert_eq!(s.estimate_distinct().value, 100.0);
        assert_eq!(s.estimate_distinct_since(50).value, 50.0);
        assert_eq!(s.estimate_distinct_since(0).value, 100.0);
        assert_eq!(s.estimate_distinct_since(100).value, 0.0);
    }

    #[test]
    fn rearrival_refreshes_recency() {
        let mut s = RecencySketch::new(&cfg(), 2);
        for i in 0..100u64 {
            s.insert(gt_hash::fold61(i), 10);
        }
        assert_eq!(s.estimate_distinct_since(11).value, 0.0);
        // 30 of them come back later.
        for i in 0..30u64 {
            s.insert(gt_hash::fold61(i), 20);
        }
        assert_eq!(s.estimate_distinct_since(11).value, 30.0);
        assert_eq!(s.estimate_distinct().value, 100.0);
    }

    #[test]
    fn out_of_order_timestamps_keep_the_max() {
        let mut s = RecencySketch::new(&cfg(), 3);
        let l = gt_hash::fold61(7);
        s.insert(l, 100);
        s.insert(l, 5); // late, out-of-order arrival
        assert_eq!(s.estimate_distinct_since(50).value, 1.0);
    }

    #[test]
    fn merge_reconciles_timestamps_by_max() {
        let mut a = RecencySketch::new(&cfg(), 4);
        let mut b = RecencySketch::new(&cfg(), 4);
        for i in 0..200u64 {
            a.insert(gt_hash::fold61(i), 10);
        }
        for i in 100..300u64 {
            b.insert(gt_hash::fold61(i), 20);
        }
        let u = a.merged(&b).unwrap();
        assert_eq!(u.estimate_distinct().value, 300.0);
        // Labels 100..300 are recent (b saw them at t=20) — including the
        // overlap a had seen earlier.
        assert_eq!(u.estimate_distinct_since(15).value, 200.0);
        // Merge order must not matter for timestamps.
        let u2 = b.merged(&a).unwrap();
        assert_eq!(u2.estimate_distinct_since(15).value, 200.0);
    }

    #[test]
    fn accurate_at_scale() {
        let mut s = RecencySketch::new(&cfg(), 5);
        let n = 50_000u64;
        for i in 0..n {
            s.insert(gt_hash::fold61(i), i);
        }
        let est = s.estimate_distinct_since(n / 2).value;
        let truth = (n / 2) as f64;
        assert!(
            (est - truth).abs() < 0.1 * n as f64,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn uncoordinated_merge_rejected() {
        let a = RecencySketch::new(&cfg(), 1);
        let b = RecencySketch::new(&cfg(), 2);
        assert!(a.merged(&b).is_err());
    }
}
