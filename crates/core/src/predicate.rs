//! Predicate-restricted distinct counting: "aggregate functions over the
//! distinct labels" evaluated *after* the streams were observed.
//!
//! Because the coordinated sample stores actual labels (not just hashed
//! fingerprints), the referee can estimate, for **any** predicate `P`
//! chosen at query time,
//!
//! ```text
//! F₀(P) = |{ distinct labels x in the union : P(x) }|
//! ```
//!
//! by counting the sampled labels that satisfy `P` and scaling by `2^l`.
//! This is the query-flexibility selling point of sample-based sketches
//! over bitmap-based ones (PCSA/LogLog cannot answer any of these):
//! one pass over the streams, unbounded post-hoc predicates.
//!
//! ## Error guarantee
//!
//! The estimate is unbiased. Its error is `± ε · F₀` (additive in the
//! *total* distinct count, with probability `1 − δ`) rather than relative
//! in `F₀(P)`: a predicate selecting a tiny sub-population is estimated
//! from few sample points. Experiment E13 measures the transition.

use crate::estimate::{median_f64, Estimate};
use crate::sketch::GtSketch;
use crate::trial::Payload;

impl<V: Payload> GtSketch<V> {
    /// Estimate the number of distinct labels satisfying `pred`.
    ///
    /// ```
    /// use gt_core::{DistinctSketch, SketchConfig};
    /// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
    /// let mut s = DistinctSketch::new(&cfg, 7);
    /// s.extend_labels(0..1000);
    /// // Predicate chosen at query time, after observation:
    /// assert_eq!(s.estimate_distinct_where(|l| l < 100).value, 100.0);
    /// ```
    ///
    /// Unbiased; error is additive `± ε · F₀(total)` with probability
    /// `1 − δ` (see module docs).
    pub fn estimate_distinct_where(&self, pred: impl Fn(u64) -> bool + Copy) -> Estimate {
        let mut per_trial: Vec<f64> = self
            .trials()
            .iter()
            .map(|t| {
                let hits = t.sample_iter().filter(|&(label, _)| pred(label)).count();
                hits as f64 * 2f64.powi(t.level() as i32)
            })
            .collect();
        Estimate {
            value: median_f64(&mut per_trial),
            epsilon: self.config().epsilon(),
            delta: self.config().delta(),
        }
    }

    /// Estimate the *fraction* of distinct labels satisfying `pred`
    /// (a ratio estimator: restricted count / total count, per trial).
    pub fn estimate_fraction_where(&self, pred: impl Fn(u64) -> bool + Copy) -> f64 {
        let mut per_trial: Vec<f64> = self
            .trials()
            .iter()
            .filter(|t| t.sample_len() > 0)
            .map(|t| {
                let hits = t.sample_iter().filter(|&(label, _)| pred(label)).count();
                hits as f64 / t.sample_len() as f64
            })
            .collect();
        if per_trial.is_empty() {
            return 0.0;
        }
        median_f64(&mut per_trial)
    }

    /// Estimate `Σ value(x)` over distinct labels satisfying `pred` —
    /// the fully general "simple function on the union" of the title.
    pub fn estimate_weighted_where(
        &self,
        pred: impl Fn(u64) -> bool + Copy,
        weight: impl Fn(u64, V) -> f64 + Copy,
    ) -> f64 {
        self.estimate_weighted(|label, v| if pred(label) { weight(label, v) } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use crate::params::SketchConfig;
    use crate::sketch::DistinctSketch;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    // Labels carry their pre-fold identity in the low bits by construction:
    // we keep a side table so predicates can refer to original ids.
    fn build(n: u64, seed: u64) -> (DistinctSketch, Vec<u64>) {
        let labels: Vec<u64> = (0..n).map(gt_hash::fold61).collect();
        let mut s = DistinctSketch::new(&cfg(), seed);
        s.extend_labels(labels.iter().copied());
        (s, labels)
    }

    #[test]
    fn exact_at_level_zero() {
        let (s, labels) = build(200, 1);
        let evens: std::collections::HashSet<u64> =
            labels.iter().copied().filter(|l| l % 2 == 0).collect();
        let est = s.estimate_distinct_where(|l| evens.contains(&l));
        assert_eq!(est.value, evens.len() as f64);
    }

    #[test]
    fn half_population_predicate_is_accurate_at_scale() {
        let (s, _labels) = build(50_000, 2);
        // Folded labels are uniform, so "low bit set" selects ~half.
        let est = s.estimate_distinct_where(|l| l & 1 == 1);
        let rel = (est.value - 25_000.0).abs() / 25_000.0;
        assert!(rel < 0.15, "est {} rel {rel}", est.value);
    }

    #[test]
    fn fraction_estimator_matches_population() {
        let (s, _) = build(50_000, 3);
        let frac = s.estimate_fraction_where(|l| l % 4 == 0);
        assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn empty_sketch_fraction_is_zero() {
        let s = DistinctSketch::new(&cfg(), 4);
        assert_eq!(s.estimate_fraction_where(|_| true), 0.0);
        assert_eq!(s.estimate_distinct_where(|_| true).value, 0.0);
    }

    #[test]
    fn tiny_subpopulation_error_is_additive_not_relative() {
        // A predicate selecting ~0.1% of labels: absolute error should be
        // within ε·F₀ even though relative error may be large.
        let (s, labels) = build(50_000, 5);
        let rare: std::collections::HashSet<u64> = labels.iter().copied().take(50).collect();
        let est = s.estimate_distinct_where(|l| rare.contains(&l));
        assert!(
            (est.value - 50.0).abs() <= 0.1 * 50_000.0,
            "additive bound violated: {}",
            est.value
        );
    }

    #[test]
    fn predicate_composes_with_weights() {
        let labels: Vec<u64> = (0..100).map(gt_hash::fold61).collect();
        let mut s = crate::sumdistinct::SumDistinctSketch::new(&cfg(), 6);
        for &l in &labels {
            s.insert(l, 7);
        }
        let evens: std::collections::HashSet<u64> =
            labels.iter().copied().filter(|l| l % 2 == 0).collect();
        let sum = s
            .inner()
            .estimate_weighted_where(|l| evens.contains(&l), |_, v| v as f64);
        assert_eq!(sum, evens.len() as f64 * 7.0);
    }

    #[test]
    fn true_predicate_equals_distinct_estimate() {
        let (s, _) = build(30_000, 7);
        let all = s.estimate_distinct_where(|_| true);
        assert_eq!(all.value, s.estimate_distinct().value);
    }
}
