//! Shared worker-thread plumbing for the parallel build and merge paths.
//!
//! Three things live here, each previously duplicated (or missing) at its
//! call sites:
//!
//! * [`effective_workers`] — the host's usable parallelism. Spawning more
//!   threads than cores is not a no-op: the PR-3 parallel-ingest bench
//!   regressed to 0.53× *because* `build_parallel` obeyed the requested
//!   thread count on a host with fewer cores, paying spawn, migration and
//!   cache-churn costs with zero parallel capacity to buy back.
//! * [`balanced_chunks`] — splits a slice into `parts` contiguous chunks
//!   whose lengths differ by at most one. The old `chunks(div_ceil(n, t))`
//!   split hands the last worker a fragment (or nothing): 10 items over 4
//!   threads became `[3, 3, 3, 1]` instead of `[3, 3, 2, 2]`, so the
//!   critical path was ~`div_ceil` items regardless of how the remainder
//!   fell.
//! * `run_workers` — scoped fan-out that converts worker panics into
//!   [`SketchError::WorkerPanicked`] instead of aborting the process from
//!   a referee thread.

use crate::error::{Result, SketchError};

/// Number of worker threads worth spawning on this host: the OS-reported
/// available parallelism, or 1 when that cannot be queried (the
/// conservative choice — a sequential fallback is correct, oversubscription
/// is a regression).
pub fn effective_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `items` into at most `parts` contiguous chunks whose lengths
/// differ by at most one (the first `len % parts` chunks take the extra
/// item). `parts` is clamped to `[1, len]` — no empty chunks are produced
/// for a non-empty slice, and an empty slice yields one empty chunk.
///
/// Concatenating the chunks in order reproduces `items` exactly, which is
/// what lets the parallel build stay bitwise-identical to the sequential
/// one: contiguous chunks + ordered fold preserve first-arrival order for
/// keep-first payloads.
pub fn balanced_chunks<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.min(items.len()).max(1);
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = items;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        let (chunk, tail) = rest.split_at(take);
        out.push(chunk);
        rest = tail;
    }
    debug_assert!(rest.is_empty());
    out
}

/// Run `f` over each item on its own scoped thread and collect the results
/// in item order.
///
/// A panicking worker — or a panic escaping the scope itself — surfaces as
/// [`SketchError::WorkerPanicked`] rather than unwinding through (or
/// aborting) the caller: a poisoned closure fails the one request, and the
/// caller can retry sequentially.
pub(crate) fn run_workers<I, U, F>(items: Vec<I>, f: F) -> Result<Vec<U>>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let f = &f;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(move |_| f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| SketchError::WorkerPanicked))
            .collect()
    })
    .unwrap_or(Err(SketchError::WorkerPanicked))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_workers_is_at_least_one() {
        assert!(effective_workers() >= 1);
    }

    #[test]
    fn chunks_are_balanced_to_within_one_item() {
        // Regression for the `chunks(div_ceil)` imbalance: 10 items over 4
        // threads must be [3, 3, 2, 2], never [3, 3, 3, 1].
        let items: Vec<u32> = (0..10).collect();
        let sizes: Vec<usize> = balanced_chunks(&items, 4).iter().map(|c| c.len()).collect();
        assert_eq!(sizes, [3, 3, 2, 2]);

        for len in 0..100usize {
            let items: Vec<usize> = (0..len).collect();
            for parts in 1..=12 {
                let chunks = balanced_chunks(&items, parts);
                let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
                let max = sizes.iter().copied().max().unwrap();
                let min = sizes.iter().copied().min().unwrap();
                assert!(
                    max - min <= 1,
                    "len {len} parts {parts}: sizes {sizes:?} differ by more than 1"
                );
                let rejoined: Vec<usize> = chunks.concat();
                assert_eq!(rejoined, items, "len {len} parts {parts}: order changed");
                if len > 0 {
                    assert!(min >= 1, "len {len} parts {parts}: empty chunk");
                }
            }
        }
    }

    #[test]
    fn parts_clamp_to_item_count_and_to_one() {
        let items = [1u8, 2, 3];
        assert_eq!(balanced_chunks(&items, 64).len(), 3);
        assert_eq!(balanced_chunks(&items, 0).len(), 1);
        let empty: [u8; 0] = [];
        let chunks = balanced_chunks(&empty, 8);
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].is_empty());
    }

    #[test]
    fn run_workers_preserves_item_order() {
        let out = run_workers((0..20u64).collect(), |x| x * x).unwrap();
        assert_eq!(out, (0..20u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn poisoned_worker_surfaces_as_error_not_abort() {
        let result = run_workers(vec![1u32, 2, 3], |x| {
            if x == 2 {
                panic!("poisoned closure");
            }
            x
        });
        assert_eq!(result.unwrap_err(), SketchError::WorkerPanicked);
    }
}
