//! SumDistinct: duplicate-insensitive sums over the distinct labels of a
//! union of streams — the "simple functions" of the paper's title beyond
//! plain counting.
//!
//! Each stream item is a `(label, value)` pair where the value is a
//! function of the label (e.g. flow → bytes reserved for it, SKU → unit
//! price). The target aggregate is
//!
//! ```text
//! SumDistinct = Σ_{distinct labels x in the union} value(x)
//! ```
//!
//! — a quantity a plain sum gets wrong by the duplication factor, since
//! every re-observation (locally or at another party) would be re-counted.
//! The coordinated sample fixes this for free: the sample *is* a Bernoulli
//! sample of the distinct labels with known inclusion probability `2^{-l}`,
//! so `2^l · Σ_{x ∈ S} value(x)` is an unbiased Horvitz–Thompson estimate.
//!
//! ## Error guarantee
//!
//! With per-trial capacity `c = Θ(1/ε²)` the estimate is within
//! `ε · R · F₀` of the truth with probability `1 − δ`, where values lie in
//! `[0, R]` — i.e. the *relative* error is `ε · (R·F₀ / SumDistinct)`,
//! which collapses to `ε` when values are `{0,1}` (predicate counting) or
//! within a constant factor of each other, and degrades gracefully with
//! value skew. Experiment E7 measures both regimes. To purchase relative
//! error `ε` under value bound `R` with mean value `v̄`, scale capacity by
//! `(R/v̄)²` via [`SketchConfig::with_constants`].

use crate::error::Result;
use crate::estimate::Estimate;
use crate::params::SketchConfig;
use crate::sketch::GtSketch;

/// An `(ε, δ)` sketch for duplicate-insensitive sums over distinct labels.
///
/// ```
/// use gt_core::{SketchConfig, SumDistinctSketch};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut s = SumDistinctSketch::new(&cfg, 42);
/// for _ in 0..10 {
///     s.insert(1, 100); // same label re-observed: counted once
///     s.insert(2, 50);
/// }
/// assert_eq!(s.estimate_sum().value, 150.0);
/// assert_eq!(s.estimate_distinct().value, 2.0);
/// ```
///
/// Thin wrapper around [`GtSketch<u64>`] that fixes the payload semantics:
/// the payload is the label's value, and re-observations keep the
/// first-seen value (the model assumes the value is determined by the
/// label; disagreement means the *stream* violates the model).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SumDistinctSketch {
    inner: GtSketch<u64>,
}

impl SumDistinctSketch {
    /// Create an empty sketch; same coordination contract as
    /// [`crate::DistinctSketch`].
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        SumDistinctSketch {
            inner: GtSketch::new(config, master_seed),
        }
    }

    /// Observe a `(label, value)` item.
    #[inline]
    pub fn insert(&mut self, label: u64, value: u64) {
        self.inner.insert_with(label, value);
    }

    /// Observe every `(label, value)` pair from an iterator.
    pub fn extend_pairs(&mut self, pairs: impl IntoIterator<Item = (u64, u64)>) {
        for (label, value) in pairs {
            self.insert(label, value);
        }
    }

    /// `(ε, δ)`-estimate of `Σ_{distinct x} value(x)` (see module docs for
    /// the precise error statement under value skew).
    pub fn estimate_sum(&self) -> Estimate {
        let value = self.inner.estimate_weighted(|_, v| v as f64);
        Estimate {
            value,
            epsilon: self.inner.config().epsilon(),
            delta: self.inner.config().delta(),
        }
    }

    /// `(ε, δ)`-estimate of the distinct-label count (comes for free).
    pub fn estimate_distinct(&self) -> Estimate {
        self.inner.estimate_distinct()
    }

    /// Estimate of the mean value per distinct label (ratio estimator).
    pub fn estimate_mean_value(&self) -> f64 {
        let d = self.inner.estimate_distinct().value;
        if d == 0.0 {
            0.0
        } else {
            self.estimate_sum().value / d
        }
    }

    /// Union with another party's sketch.
    pub fn merge_from(&mut self, other: &SumDistinctSketch) -> Result<()> {
        self.inner.merge_from(&other.inner)
    }

    /// Union as a new sketch.
    pub fn merged(&self, other: &SumDistinctSketch) -> Result<SumDistinctSketch> {
        let mut out = self.clone();
        out.merge_from(other)?;
        Ok(out)
    }

    /// Items observed (duplicates included).
    pub fn items_observed(&self) -> u64 {
        self.inner.items_observed()
    }

    /// The underlying generic sketch (advanced estimators).
    pub fn inner(&self) -> &GtSketch<u64> {
        &self.inner
    }
}

impl crate::merge::Mergeable for SumDistinctSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        SumDistinctSketch::merge_from(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn pairs(n: u64, value: impl Fn(u64) -> u64 + Copy) -> impl Iterator<Item = (u64, u64)> {
        (0..n).map(move |i| (gt_hash::fold61(i), value(i)))
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = SumDistinctSketch::new(&cfg(), 1);
        s.extend_pairs(pairs(100, |i| i % 7 + 1));
        let truth: u64 = (0..100).map(|i| i % 7 + 1).sum();
        assert_eq!(s.estimate_sum().value, truth as f64);
        assert_eq!(s.estimate_distinct().value, 100.0);
    }

    #[test]
    fn duplicate_insensitive_unlike_plain_sum() {
        let mut s = SumDistinctSketch::new(&cfg(), 2);
        let v: Vec<(u64, u64)> = pairs(1_000, |_| 5).collect();
        for _ in 0..10 {
            s.extend_pairs(v.iter().copied()); // 10× duplication
        }
        // Plain sum would be 50_000; SumDistinct stays 5_000.
        assert_eq!(s.estimate_sum().value, 5_000.0);
    }

    #[test]
    fn large_streams_stay_within_relative_error_for_flat_values() {
        let mut s = SumDistinctSketch::new(&cfg(), 3);
        let n = 60_000u64;
        s.extend_pairs(pairs(n, |i| 1 + (i % 3))); // values in {1,2,3}
        let truth: u64 = (0..n).map(|i| 1 + (i % 3)).sum();
        let rel = (s.estimate_sum().value - truth as f64).abs() / truth as f64;
        // Value ratio R/v̄ = 1.5, so the error budget inflates modestly.
        assert!(rel < 0.2, "rel {rel}");
    }

    #[test]
    fn merge_is_duplicate_insensitive_across_parties() {
        let config = cfg();
        let mut a = SumDistinctSketch::new(&config, 4);
        let mut b = SumDistinctSketch::new(&config, 4);
        let shared: Vec<(u64, u64)> = pairs(500, |i| i % 10).collect();
        a.extend_pairs(shared.iter().copied());
        b.extend_pairs(shared.iter().copied());
        let union = a.merged(&b).unwrap();
        assert_eq!(union.estimate_sum().value, a.estimate_sum().value);
    }

    #[test]
    fn merge_matches_single_observer() {
        let config = cfg();
        let mut a = SumDistinctSketch::new(&config, 5);
        let mut b = SumDistinctSketch::new(&config, 5);
        let mut whole = SumDistinctSketch::new(&config, 5);
        let pa: Vec<(u64, u64)> = pairs(20_000, |i| i % 5 + 1).collect();
        let pb: Vec<(u64, u64)> = (10_000..30_000u64)
            .map(|i| (gt_hash::fold61(i), i % 5 + 1))
            .collect();
        a.extend_pairs(pa.iter().copied());
        b.extend_pairs(pb.iter().copied());
        whole.extend_pairs(pa.iter().copied());
        whole.extend_pairs(pb.iter().copied());
        let union = a.merged(&b).unwrap();
        assert_eq!(union.estimate_sum().value, whole.estimate_sum().value);
    }

    #[test]
    fn mean_value_ratio_estimator() {
        let mut s = SumDistinctSketch::new(&cfg(), 6);
        s.extend_pairs(pairs(1_000, |_| 4));
        assert!((s.estimate_mean_value() - 4.0).abs() < 1e-9);
        let empty = SumDistinctSketch::new(&cfg(), 6);
        assert_eq!(empty.estimate_mean_value(), 0.0);
    }

    #[test]
    fn seed_mismatch_rejected() {
        let a = SumDistinctSketch::new(&cfg(), 1);
        let b = SumDistinctSketch::new(&cfg(), 2);
        assert!(a.merged(&b).is_err());
    }
}
