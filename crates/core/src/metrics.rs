//! Sketch-ops observability: per-sketch counters for every decision the
//! sampling and union machinery takes.
//!
//! Production sketch services need to see what their sketches are *doing*
//! — duplicate rates, promotion cadence, and above all whether the local
//! insert path and the union path take the same decisions (the
//! payload-reconciliation counters here are what would have surfaced the
//! historical `insert_merging` argument-order bug: a union and a single
//! observer of the same stream must report identical reconciliation
//! counts and identical final state).
//!
//! The implementation is std-only: relaxed [`AtomicU64`] counters, no
//! locks, no allocation on the record path. Counters are monotone and
//! advisory — they never feed back into the estimator. Read them with
//! [`SketchMetrics::snapshot`], which returns a plain-old-data
//! [`MetricsSnapshot`] that renders human-readable via `Display` and
//! machine-readable via [`MetricsSnapshot::to_json`].
//!
//! # Aggregation ordering guarantee
//!
//! Counters are recorded with `Relaxed` atomics, so a *single* counter
//! read is always torn-free but a *multi-sketch aggregate* (summing one
//! snapshot per shard or per writer) is only meaningful if it corresponds
//! to a consistent cut of the recording history. The rule every
//! aggregator in this workspace follows: **hold every lock that guards a
//! recording site before reading the first counter**. Batch ingest paths
//! flush their thread-local [`InsertTally`] while still holding the
//! sketch's lock, so an aggregate taken under all locks contains each
//! flush either entirely or not at all, and contains every flush from
//! operations that completed (released their lock) before the aggregate
//! began — a prefix-closed view of each thread's history. Aggregates
//! taken lock-by-lock (the historical `ShardedSketch::metrics_snapshot`
//! bug) do not have this property: work recorded on a later-read shard
//! can causally *follow* work missed on an earlier-read shard, producing
//! totals that never existed at any instant.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use parking_lot::Mutex;

use crate::trial::{TrialInsert, TrialMergeReport};

/// Monotone counters recording what a sketch's trials did. One instance
/// lives inside every [`crate::GtSketch`]; sharded sketches aggregate one
/// snapshot per shard.
#[derive(Debug, Default)]
pub struct SketchMetrics {
    // Per-trial insert outcomes, keyed by `TrialInsert`.
    inserts_sampled: AtomicU64,
    inserts_duplicate: AtomicU64,
    inserts_below_level: AtomicU64,
    inserts_sampled_after_promotion: AtomicU64,
    inserts_evicted_by_promotion: AtomicU64,
    // Level movements, from any cause (insert overflow or union).
    level_promotions: AtomicU64,
    // Payload reconciliations on the *local* path (`insert_merging`
    // duplicates).
    local_reconciliations: AtomicU64,
    // Union accounting.
    merge_calls: AtomicU64,
    merge_entries_absorbed: AtomicU64,
    merge_reconciliations: AtomicU64,
    merge_below_level: AtomicU64,
}

impl SketchMetrics {
    /// Fresh, all-zero counters.
    pub const fn new() -> Self {
        SketchMetrics {
            inserts_sampled: AtomicU64::new(0),
            inserts_duplicate: AtomicU64::new(0),
            inserts_below_level: AtomicU64::new(0),
            inserts_sampled_after_promotion: AtomicU64::new(0),
            inserts_evicted_by_promotion: AtomicU64::new(0),
            level_promotions: AtomicU64::new(0),
            local_reconciliations: AtomicU64::new(0),
            merge_calls: AtomicU64::new(0),
            merge_entries_absorbed: AtomicU64::new(0),
            merge_reconciliations: AtomicU64::new(0),
            merge_below_level: AtomicU64::new(0),
        }
    }

    /// Record one per-trial insert outcome.
    #[inline]
    pub fn record_insert(&self, outcome: TrialInsert) {
        let counter = match outcome {
            TrialInsert::Sampled => &self.inserts_sampled,
            TrialInsert::Duplicate => &self.inserts_duplicate,
            TrialInsert::BelowLevel => &self.inserts_below_level,
            TrialInsert::SampledAfterPromotion => &self.inserts_sampled_after_promotion,
            TrialInsert::EvictedByPromotion => &self.inserts_evicted_by_promotion,
        };
        counter.fetch_add(1, Relaxed);
    }

    /// Record `n` level promotions.
    #[inline]
    pub fn record_promotions(&self, n: u64) {
        if n > 0 {
            self.level_promotions.fetch_add(n, Relaxed);
        }
    }

    /// Record one local (`insert_merging` duplicate) payload
    /// reconciliation.
    #[inline]
    pub fn record_local_reconciliation(&self) {
        self.local_reconciliations.fetch_add(1, Relaxed);
    }

    /// Record that a sketch-level union ran (once per `merge_from` call,
    /// regardless of trial count).
    #[inline]
    pub fn record_merge_call(&self) {
        self.merge_calls.fetch_add(1, Relaxed);
    }

    /// Fold one trial's union report into the counters.
    pub fn record_trial_merge(&self, report: &TrialMergeReport) {
        self.merge_entries_absorbed
            .fetch_add(report.absorbed as u64, Relaxed);
        self.merge_reconciliations
            .fetch_add(report.reconciled as u64, Relaxed);
        self.merge_below_level
            .fetch_add(report.below_level as u64, Relaxed);
        self.record_promotions(u64::from(report.promotions));
    }

    /// Bulk-record insert outcomes tallied locally by a batch loop (at
    /// most one atomic op per *non-zero* counter instead of one per item).
    ///
    /// Zero counters are skipped entirely, so flushing the tally of a
    /// single-item insert costs one or two RMWs total rather than one per
    /// field — this is what keeps [`crate::GtSketch::insert_with`] cheap
    /// now that it also routes through a tally.
    pub fn record_insert_tally(&self, tally: &InsertTally) {
        fn add_nonzero(counter: &AtomicU64, n: u64) {
            if n > 0 {
                counter.fetch_add(n, Relaxed);
            }
        }
        add_nonzero(&self.inserts_sampled, tally.sampled);
        add_nonzero(&self.inserts_duplicate, tally.duplicate);
        add_nonzero(&self.inserts_below_level, tally.below_level);
        add_nonzero(
            &self.inserts_sampled_after_promotion,
            tally.sampled_after_promotion,
        );
        add_nonzero(
            &self.inserts_evicted_by_promotion,
            tally.evicted_by_promotion,
        );
        add_nonzero(&self.local_reconciliations, tally.local_reconciliations);
        self.record_promotions(tally.promotions);
    }

    /// A coherent point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            inserts_sampled: self.inserts_sampled.load(Relaxed),
            inserts_duplicate: self.inserts_duplicate.load(Relaxed),
            inserts_below_level: self.inserts_below_level.load(Relaxed),
            inserts_sampled_after_promotion: self.inserts_sampled_after_promotion.load(Relaxed),
            inserts_evicted_by_promotion: self.inserts_evicted_by_promotion.load(Relaxed),
            level_promotions: self.level_promotions.load(Relaxed),
            local_reconciliations: self.local_reconciliations.load(Relaxed),
            merge_calls: self.merge_calls.load(Relaxed),
            merge_entries_absorbed: self.merge_entries_absorbed.load(Relaxed),
            merge_reconciliations: self.merge_reconciliations.load(Relaxed),
            merge_below_level: self.merge_below_level.load(Relaxed),
        }
    }

    /// Zero every counter (e.g. between experiment phases).
    pub fn reset(&self) {
        for counter in [
            &self.inserts_sampled,
            &self.inserts_duplicate,
            &self.inserts_below_level,
            &self.inserts_sampled_after_promotion,
            &self.inserts_evicted_by_promotion,
            &self.level_promotions,
            &self.local_reconciliations,
            &self.merge_calls,
            &self.merge_entries_absorbed,
            &self.merge_reconciliations,
            &self.merge_below_level,
        ] {
            counter.store(0, Relaxed);
        }
    }
}

impl Clone for SketchMetrics {
    /// Cloning a sketch clones its counters' current values (the clone
    /// then counts independently).
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        SketchMetrics {
            inserts_sampled: AtomicU64::new(snap.inserts_sampled),
            inserts_duplicate: AtomicU64::new(snap.inserts_duplicate),
            inserts_below_level: AtomicU64::new(snap.inserts_below_level),
            inserts_sampled_after_promotion: AtomicU64::new(snap.inserts_sampled_after_promotion),
            inserts_evicted_by_promotion: AtomicU64::new(snap.inserts_evicted_by_promotion),
            level_promotions: AtomicU64::new(snap.level_promotions),
            local_reconciliations: AtomicU64::new(snap.local_reconciliations),
            merge_calls: AtomicU64::new(snap.merge_calls),
            merge_entries_absorbed: AtomicU64::new(snap.merge_entries_absorbed),
            merge_reconciliations: AtomicU64::new(snap.merge_reconciliations),
            merge_below_level: AtomicU64::new(snap.merge_below_level),
        }
    }
}

/// Local accumulator for batch insert loops; flushed once via
/// [`SketchMetrics::record_insert_tally`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertTally {
    /// `TrialInsert::Sampled` outcomes.
    pub sampled: u64,
    /// `TrialInsert::Duplicate` outcomes.
    pub duplicate: u64,
    /// `TrialInsert::BelowLevel` outcomes.
    pub below_level: u64,
    /// `TrialInsert::SampledAfterPromotion` outcomes.
    pub sampled_after_promotion: u64,
    /// `TrialInsert::EvictedByPromotion` outcomes.
    pub evicted_by_promotion: u64,
    /// Level promotions observed across the batch.
    pub promotions: u64,
    /// Payload reconciliations on local duplicate arrivals (the merging
    /// batch kernel's counterpart of
    /// [`SketchMetrics::record_local_reconciliation`]).
    pub local_reconciliations: u64,
}

impl InsertTally {
    /// Count one outcome.
    #[inline]
    pub fn record(&mut self, outcome: TrialInsert) {
        match outcome {
            TrialInsert::Sampled => self.sampled += 1,
            TrialInsert::Duplicate => self.duplicate += 1,
            TrialInsert::BelowLevel => self.below_level += 1,
            TrialInsert::SampledAfterPromotion => self.sampled_after_promotion += 1,
            TrialInsert::EvictedByPromotion => self.evicted_by_promotion += 1,
        }
    }
}

/// Plain-old-data copy of [`SketchMetrics`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Labels that entered a trial's sample directly.
    pub inserts_sampled: u64,
    /// Labels already present in a trial's sample.
    pub inserts_duplicate: u64,
    /// Labels below a trial's sampling level on arrival.
    pub inserts_below_level: u64,
    /// Labels sampled after forcing one or more promotions.
    pub inserts_sampled_after_promotion: u64,
    /// Labels whose own insert promoted them out of qualification.
    pub inserts_evicted_by_promotion: u64,
    /// Level promotions from any cause (insert overflow or union).
    pub level_promotions: u64,
    /// Payload reconciliations on local duplicate arrivals
    /// (`insert_merging`).
    pub local_reconciliations: u64,
    /// Sketch-level union operations.
    pub merge_calls: u64,
    /// Entries copied from the other side's samples during unions.
    pub merge_entries_absorbed: u64,
    /// Payload reconciliations where both union sides sampled a label.
    pub merge_reconciliations: u64,
    /// Other-side entries skipped during union (below aligned level).
    pub merge_below_level: u64,
}

impl MetricsSnapshot {
    /// Total per-trial insert decisions recorded.
    pub fn trial_inserts(&self) -> u64 {
        self.inserts_sampled
            + self.inserts_duplicate
            + self.inserts_below_level
            + self.inserts_sampled_after_promotion
            + self.inserts_evicted_by_promotion
    }

    /// Total payload reconciliations, local and union. A single observer
    /// and an equivalent union must agree on per-label payloads even
    /// though this total differs (which is why the two are tracked
    /// separately).
    pub fn reconciliations(&self) -> u64 {
        self.local_reconciliations + self.merge_reconciliations
    }

    /// Field-wise sum, for aggregating shard or party snapshots.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.inserts_sampled += other.inserts_sampled;
        self.inserts_duplicate += other.inserts_duplicate;
        self.inserts_below_level += other.inserts_below_level;
        self.inserts_sampled_after_promotion += other.inserts_sampled_after_promotion;
        self.inserts_evicted_by_promotion += other.inserts_evicted_by_promotion;
        self.level_promotions += other.level_promotions;
        self.local_reconciliations += other.local_reconciliations;
        self.merge_calls += other.merge_calls;
        self.merge_entries_absorbed += other.merge_entries_absorbed;
        self.merge_reconciliations += other.merge_reconciliations;
        self.merge_below_level += other.merge_below_level;
    }

    /// Render as a single JSON object (hand-rolled: the build environment
    /// has no serde_json).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{",
                "\"inserts_sampled\":{},",
                "\"inserts_duplicate\":{},",
                "\"inserts_below_level\":{},",
                "\"inserts_sampled_after_promotion\":{},",
                "\"inserts_evicted_by_promotion\":{},",
                "\"level_promotions\":{},",
                "\"local_reconciliations\":{},",
                "\"merge_calls\":{},",
                "\"merge_entries_absorbed\":{},",
                "\"merge_reconciliations\":{},",
                "\"merge_below_level\":{}",
                "}}"
            ),
            self.inserts_sampled,
            self.inserts_duplicate,
            self.inserts_below_level,
            self.inserts_sampled_after_promotion,
            self.inserts_evicted_by_promotion,
            self.level_promotions,
            self.local_reconciliations,
            self.merge_calls,
            self.merge_entries_absorbed,
            self.merge_reconciliations,
            self.merge_below_level,
        )
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "sketch metrics:")?;
        writeln!(
            f,
            "  inserts: {} ({} sampled, {} duplicate, {} below-level, \
             {} sampled-after-promotion, {} evicted-by-promotion)",
            self.trial_inserts(),
            self.inserts_sampled,
            self.inserts_duplicate,
            self.inserts_below_level,
            self.inserts_sampled_after_promotion,
            self.inserts_evicted_by_promotion,
        )?;
        writeln!(f, "  level promotions: {}", self.level_promotions)?;
        writeln!(
            f,
            "  unions: {} calls, {} entries absorbed, {} below-level skips",
            self.merge_calls, self.merge_entries_absorbed, self.merge_below_level,
        )?;
        write!(
            f,
            "  payload reconciliations: {} local, {} union",
            self.local_reconciliations, self.merge_reconciliations,
        )
    }
}

/// Why a writer pushed its local buffer into the shared global sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropagationCause {
    /// The local buffer reached the writer's item threshold.
    BufferFull,
    /// The published global level ran ahead of the writer's local level,
    /// so most of the writer's buffered labels were doomed to be
    /// subsampled away — propagate early and adopt the higher level.
    LevelLag,
    /// An explicit [`crate::concurrent::SketchWriter::flush`] (including
    /// the one on drop).
    Flush,
}

/// Counters for the concurrent serving path
/// ([`crate::concurrent::ConcurrentSketch`]): propagation cadence by
/// cause, snapshot traffic, and the folded per-writer sketch counters.
///
/// Propagation counters are relaxed atomics (single-counter reads only);
/// the folded writer-side [`MetricsSnapshot`] is guarded by a mutex and
/// updated inside each propagation, so
/// [`ConcurrentMetrics::snapshot`] reads it under that lock and the
/// aggregation ordering guarantee above applies: the folded totals cover
/// exactly the propagations that have completed.
#[derive(Debug, Default)]
pub struct ConcurrentMetrics {
    propagations_buffer_full: AtomicU64,
    propagations_level_lag: AtomicU64,
    propagations_flush: AtomicU64,
    items_propagated: AtomicU64,
    levels_adopted: AtomicU64,
    snapshots_published: AtomicU64,
    snapshot_reads: AtomicU64,
    /// Field-wise sum of every propagated writer-local sketch's counters.
    writer: Mutex<MetricsSnapshot>,
}

impl ConcurrentMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ConcurrentMetrics::default()
    }

    /// Record one completed propagation: its cause, how many items the
    /// local buffer carried, how many levels the writer adopted from the
    /// global sketch afterwards, and the local sketch's own counters.
    pub fn record_propagation(
        &self,
        cause: PropagationCause,
        items: u64,
        levels_adopted: u64,
        local: &MetricsSnapshot,
    ) {
        let counter = match cause {
            PropagationCause::BufferFull => &self.propagations_buffer_full,
            PropagationCause::LevelLag => &self.propagations_level_lag,
            PropagationCause::Flush => &self.propagations_flush,
        };
        counter.fetch_add(1, Relaxed);
        self.items_propagated.fetch_add(items, Relaxed);
        self.levels_adopted.fetch_add(levels_adopted, Relaxed);
        self.writer.lock().absorb(local);
    }

    /// Record that a new snapshot was published.
    #[inline]
    pub fn record_publish(&self) {
        self.snapshots_published.fetch_add(1, Relaxed);
    }

    /// Record one reader snapshot acquisition.
    #[inline]
    pub fn record_snapshot_read(&self) {
        self.snapshot_reads.fetch_add(1, Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> ConcurrentMetricsSnapshot {
        // Take the writer-fold lock first so the folded totals and the
        // propagation counters describe the same set of completed
        // propagations (each propagation bumps its atomic counter before
        // folding, and folds before returning).
        let writer = *self.writer.lock();
        ConcurrentMetricsSnapshot {
            propagations_buffer_full: self.propagations_buffer_full.load(Relaxed),
            propagations_level_lag: self.propagations_level_lag.load(Relaxed),
            propagations_flush: self.propagations_flush.load(Relaxed),
            items_propagated: self.items_propagated.load(Relaxed),
            levels_adopted: self.levels_adopted.load(Relaxed),
            snapshots_published: self.snapshots_published.load(Relaxed),
            snapshot_reads: self.snapshot_reads.load(Relaxed),
            writer,
        }
    }
}

/// Plain-old-data copy of [`ConcurrentMetrics`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConcurrentMetricsSnapshot {
    /// Propagations triggered by a full local buffer.
    pub propagations_buffer_full: u64,
    /// Propagations triggered by published-level lag.
    pub propagations_level_lag: u64,
    /// Propagations triggered by an explicit or drop-time flush.
    pub propagations_flush: u64,
    /// Items (duplicates included) carried by all propagations.
    pub items_propagated: u64,
    /// Per-trial level steps writers adopted from the global sketch.
    pub levels_adopted: u64,
    /// Snapshots published (one per propagation that changed state).
    pub snapshots_published: u64,
    /// Reader snapshot acquisitions served.
    pub snapshot_reads: u64,
    /// Folded counters of every propagated writer-local sketch.
    pub writer: MetricsSnapshot,
}

impl ConcurrentMetricsSnapshot {
    /// Total propagations from any cause.
    pub fn propagations(&self) -> u64 {
        self.propagations_buffer_full + self.propagations_level_lag + self.propagations_flush
    }

    /// Render as a single JSON object (hand-rolled: the build environment
    /// has no serde_json).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{",
                "\"propagations_buffer_full\":{},",
                "\"propagations_level_lag\":{},",
                "\"propagations_flush\":{},",
                "\"items_propagated\":{},",
                "\"levels_adopted\":{},",
                "\"snapshots_published\":{},",
                "\"snapshot_reads\":{},",
                "\"writer\":{}",
                "}}"
            ),
            self.propagations_buffer_full,
            self.propagations_level_lag,
            self.propagations_flush,
            self.items_propagated,
            self.levels_adopted,
            self.snapshots_published,
            self.snapshot_reads,
            self.writer.to_json(),
        )
    }
}

impl std::fmt::Display for ConcurrentMetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "concurrent sketch metrics:")?;
        writeln!(
            f,
            "  propagations: {} ({} buffer-full, {} level-lag, {} flush)",
            self.propagations(),
            self.propagations_buffer_full,
            self.propagations_level_lag,
            self.propagations_flush,
        )?;
        writeln!(
            f,
            "  items propagated: {}, levels adopted: {}",
            self.items_propagated, self.levels_adopted,
        )?;
        writeln!(
            f,
            "  snapshots: {} published, {} read",
            self.snapshots_published, self.snapshot_reads,
        )?;
        write!(
            f,
            "  folded writer counters: {} trial inserts",
            self.writer.trial_inserts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        let m = SketchMetrics::new();
        m.record_insert(TrialInsert::Sampled);
        m.record_insert(TrialInsert::Sampled);
        m.record_insert(TrialInsert::Duplicate);
        m.record_insert(TrialInsert::BelowLevel);
        m.record_insert(TrialInsert::SampledAfterPromotion);
        m.record_insert(TrialInsert::EvictedByPromotion);
        m.record_promotions(3);
        m.record_local_reconciliation();
        m.record_merge_call();
        m.record_trial_merge(&TrialMergeReport {
            entries_scanned: 10,
            absorbed: 6,
            reconciled: 2,
            below_level: 2,
            promotions: 1,
        });
        let s = m.snapshot();
        assert_eq!(s.inserts_sampled, 2);
        assert_eq!(s.inserts_duplicate, 1);
        assert_eq!(s.inserts_below_level, 1);
        assert_eq!(s.inserts_sampled_after_promotion, 1);
        assert_eq!(s.inserts_evicted_by_promotion, 1);
        assert_eq!(s.trial_inserts(), 6);
        assert_eq!(s.level_promotions, 3 + 1);
        assert_eq!(s.local_reconciliations, 1);
        assert_eq!(s.merge_calls, 1);
        assert_eq!(s.merge_entries_absorbed, 6);
        assert_eq!(s.merge_reconciliations, 2);
        assert_eq!(s.merge_below_level, 2);
        assert_eq!(s.reconciliations(), 3);

        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn tally_flushes_in_bulk() {
        let m = SketchMetrics::new();
        let mut tally = InsertTally::default();
        for _ in 0..5 {
            tally.record(TrialInsert::Sampled);
        }
        tally.record(TrialInsert::Duplicate);
        tally.promotions = 2;
        tally.local_reconciliations = 1;
        m.record_insert_tally(&tally);
        let s = m.snapshot();
        assert_eq!(s.inserts_sampled, 5);
        assert_eq!(s.inserts_duplicate, 1);
        assert_eq!(s.level_promotions, 2);
        assert_eq!(s.local_reconciliations, 1);
    }

    #[test]
    fn clone_copies_then_diverges() {
        let m = SketchMetrics::new();
        m.record_insert(TrialInsert::Sampled);
        let c = m.clone();
        assert_eq!(c.snapshot(), m.snapshot());
        c.record_insert(TrialInsert::Sampled);
        assert_eq!(c.snapshot().inserts_sampled, 2);
        assert_eq!(m.snapshot().inserts_sampled, 1);
    }

    #[test]
    fn snapshot_renders_json_and_text() {
        let m = SketchMetrics::new();
        m.record_insert(TrialInsert::Sampled);
        let s = m.snapshot();
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"inserts_sampled\":1"));
        assert!(json.contains("\"merge_calls\":0"));
        let text = s.to_string();
        assert!(text.contains("sketch metrics"));
        assert!(text.contains("1 sampled"));
    }

    #[test]
    fn absorb_sums_fieldwise() {
        let mut a = MetricsSnapshot {
            inserts_sampled: 1,
            merge_calls: 2,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            inserts_sampled: 10,
            level_promotions: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.inserts_sampled, 11);
        assert_eq!(a.merge_calls, 2);
        assert_eq!(a.level_promotions, 4);
    }

    #[test]
    fn concurrent_metrics_record_by_cause_and_fold_writers() {
        let m = ConcurrentMetrics::new();
        let local = MetricsSnapshot {
            inserts_sampled: 7,
            ..Default::default()
        };
        m.record_propagation(PropagationCause::BufferFull, 100, 0, &local);
        m.record_propagation(PropagationCause::LevelLag, 3, 2, &local);
        m.record_propagation(PropagationCause::Flush, 9, 0, &local);
        m.record_publish();
        m.record_snapshot_read();
        m.record_snapshot_read();
        let s = m.snapshot();
        assert_eq!(s.propagations(), 3);
        assert_eq!(s.propagations_buffer_full, 1);
        assert_eq!(s.propagations_level_lag, 1);
        assert_eq!(s.propagations_flush, 1);
        assert_eq!(s.items_propagated, 112);
        assert_eq!(s.levels_adopted, 2);
        assert_eq!(s.snapshots_published, 1);
        assert_eq!(s.snapshot_reads, 2);
        assert_eq!(s.writer.inserts_sampled, 21);
    }

    #[test]
    fn concurrent_snapshot_renders_json_and_text() {
        let m = ConcurrentMetrics::new();
        m.record_propagation(
            PropagationCause::BufferFull,
            5,
            0,
            &MetricsSnapshot::default(),
        );
        let s = m.snapshot();
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"propagations_buffer_full\":1"));
        assert!(json.contains("\"writer\":{"));
        let text = s.to_string();
        assert!(text.contains("concurrent sketch metrics"));
        assert!(text.contains("1 buffer-full"));
    }
}
