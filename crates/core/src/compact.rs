//! Sketch compaction: shrinking a sketch's shape after the fact, and
//! harmonizing heterogeneously configured parties so they can union.
//!
//! In a real deployment not every observer runs the same budget: an edge
//! device might afford `capacity 256 × 5 trials` while a datacenter
//! collector runs `4800 × 29`. Coordinated sampling makes *downward*
//! conversion lossless-in-distribution:
//!
//! * **Fewer trials** — trial seeds depend only on `(master seed, trial
//!   index)` (see `gt_hash::SeedSequence`), so the first `r'` trials of a
//!   big sketch *are* the `r'` trials of a small one. Dropping the rest
//!   is exact.
//! * **Smaller capacity** — promoting a trial's level until its sample
//!   fits reproduces exactly the state a smaller-capacity party would
//!   have reached on the same label set
//!   ([`CoordinatedTrial::shrunk_to_capacity`]).
//!
//! The inverse direction is impossible (discarded labels are gone), which
//! is why [`harmonize`] always converges on the *weakest* shape — the
//! same rule Theta-sketch unions use for mismatched `k`.
//!
//! [`CoordinatedTrial::shrunk_to_capacity`]: crate::trial::CoordinatedTrial::shrunk_to_capacity

use crate::error::{Result, SketchError};
use crate::params::SketchConfig;
use crate::sketch::GtSketch;
use crate::trial::Payload;

impl<V: Payload> GtSketch<V> {
    /// A copy of this sketch with only its first `trials` trials.
    ///
    /// The result is exactly the sketch a party configured with `trials`
    /// trials (and the same everything else) would hold, so it merges
    /// with such parties. The nominal `δ` of the result is the *stated*
    /// `δ` of the original — re-derive your failure probability if you
    /// shrink aggressively.
    ///
    /// # Errors
    /// Rejects `trials` of 0 or more than the current count.
    pub fn with_trials(&self, trials: usize) -> Result<GtSketch<V>> {
        if trials == 0 || trials > self.config().trials() {
            return Err(SketchError::InvalidConfig {
                parameter: "trials",
                reason: format!(
                    "shrink target {trials} must be in [1, {}]",
                    self.config().trials()
                ),
            });
        }
        let cfg = SketchConfig::from_shape(
            self.config().epsilon(),
            self.config().delta(),
            self.config().capacity(),
            trials,
            self.config().hash_kind(),
        )?;
        let states = self
            .trials()
            .iter()
            .take(trials)
            .map(|t| (t.level(), t.items_observed(), t.sample_iter().collect()))
            .collect();
        GtSketch::reassemble(&cfg, self.master_seed(), states)
    }

    /// A copy of this sketch shrunk to a smaller per-trial capacity, by
    /// promoting levels until every trial fits.
    ///
    /// Exactly reproduces the state of a party that ran with
    /// `capacity` from the start (see module docs), so the result merges
    /// with such parties. The effective `ε` weakens to roughly
    /// `ε·√(old/new)`.
    ///
    /// # Errors
    /// Rejects capacities of 0 or more than the current capacity.
    pub fn with_capacity(&self, capacity: usize) -> Result<GtSketch<V>> {
        if capacity < 2 || capacity > self.config().capacity() {
            return Err(SketchError::InvalidConfig {
                parameter: "capacity",
                reason: format!(
                    "shrink target {capacity} must be in [2, {}]",
                    self.config().capacity()
                ),
            });
        }
        let cfg = SketchConfig::from_shape(
            self.config().epsilon(),
            self.config().delta(),
            capacity,
            self.config().trials(),
            self.config().hash_kind(),
        )?;
        let states = self
            .trials()
            .iter()
            .map(|t| {
                let s = t.shrunk_to_capacity(capacity);
                (s.level(), s.items_observed(), s.sample_iter().collect())
            })
            .collect();
        GtSketch::reassemble(&cfg, self.master_seed(), states)
    }
}

/// Convert two heterogeneously shaped sketches to their common (weakest)
/// shape — `min` capacity and `min` trials — so they can be unioned.
///
/// ```
/// use gt_core::{compact::harmonize, DistinctSketch, SketchConfig};
/// use gt_hash::HashFamilyKind;
/// let edge_cfg = SketchConfig::from_shape(0.2, 0.1, 64, 3, HashFamilyKind::Pairwise).unwrap();
/// let dc_cfg = SketchConfig::from_shape(0.05, 0.01, 4096, 9, HashFamilyKind::Pairwise).unwrap();
/// let mut edge = DistinctSketch::new(&edge_cfg, 7);
/// let mut dc = DistinctSketch::new(&dc_cfg, 7);
/// edge.extend_labels(0..40);
/// dc.extend_labels(20..60);
/// assert!(edge.merged(&dc).is_err()); // shapes differ
/// let (e, d) = harmonize(&edge, &dc).unwrap();
/// assert_eq!(e.merged(&d).unwrap().estimate_distinct().value, 60.0);
/// ```
///
/// Requires the same master seed and hash family; `(ε, δ)` of the outputs
/// are taken from the weaker input dimension-wise (larger ε, larger δ),
/// mirroring that accuracy is bounded by the weakest party.
///
/// # Errors
/// [`SketchError::SeedMismatch`] on different seeds,
/// [`SketchError::ConfigMismatch`] on different hash families.
pub fn harmonize<V: Payload>(
    a: &GtSketch<V>,
    b: &GtSketch<V>,
) -> Result<(GtSketch<V>, GtSketch<V>)> {
    if a.master_seed() != b.master_seed() {
        return Err(SketchError::SeedMismatch);
    }
    if a.config().hash_kind() != b.config().hash_kind() {
        return Err(SketchError::ConfigMismatch {
            detail: format!(
                "hash families {:?} vs {:?}",
                a.config().hash_kind(),
                b.config().hash_kind()
            ),
        });
    }
    let capacity = a.config().capacity().min(b.config().capacity());
    let trials = a.config().trials().min(b.config().trials());
    let epsilon = a.config().epsilon().max(b.config().epsilon());
    let delta = a.config().delta().max(b.config().delta());
    let target =
        SketchConfig::from_shape(epsilon, delta, capacity, trials, a.config().hash_kind())?;

    let to_shape = |s: &GtSketch<V>| -> Result<GtSketch<V>> {
        let states = s
            .trials()
            .iter()
            .take(trials)
            .map(|t| {
                let t = if t.capacity() > capacity {
                    t.shrunk_to_capacity(capacity)
                } else {
                    t.clone()
                };
                (t.level(), t.items_observed(), t.sample_iter().collect())
            })
            .collect();
        GtSketch::reassemble(&target, s.master_seed(), states)
    };
    Ok((to_shape(a)?, to_shape(b)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::DistinctSketch;
    use gt_hash::HashFamilyKind;

    fn labels(n: u64, salt: u64) -> Vec<u64> {
        (0..n).map(|i| gt_hash::fold61(i ^ (salt << 33))).collect()
    }

    fn cfg(capacity: usize, trials: usize) -> SketchConfig {
        SketchConfig::from_shape(0.1, 0.1, capacity, trials, HashFamilyKind::Pairwise).unwrap()
    }

    fn state(s: &DistinctSketch) -> Vec<(u8, Vec<u64>)> {
        s.trials()
            .iter()
            .map(|t| {
                let mut v: Vec<u64> = t.sample_iter().map(|(k, _)| k).collect();
                v.sort_unstable();
                (t.level(), v)
            })
            .collect()
    }

    #[test]
    fn shrunk_capacity_equals_native_small_build() {
        let data = labels(20_000, 1);
        let mut big = DistinctSketch::new(&cfg(1024, 7), 5);
        let mut small = DistinctSketch::new(&cfg(128, 7), 5);
        big.extend_labels(data.iter().copied());
        small.extend_labels(data.iter().copied());
        let shrunk = big.with_capacity(128).unwrap();
        assert_eq!(state(&shrunk), state(&small));
        assert_eq!(shrunk.config(), small.config());
    }

    #[test]
    fn shrunk_trials_equals_native_small_build() {
        let data = labels(10_000, 2);
        let mut big = DistinctSketch::new(&cfg(256, 9), 6);
        let mut small = DistinctSketch::new(&cfg(256, 3), 6);
        big.extend_labels(data.iter().copied());
        small.extend_labels(data.iter().copied());
        let shrunk = big.with_trials(3).unwrap();
        assert_eq!(state(&shrunk), state(&small));
    }

    #[test]
    fn shrunk_sketch_merges_with_native_parties() {
        let config_small = cfg(128, 5);
        let mut big = DistinctSketch::new(&cfg(1024, 5), 7);
        big.extend_labels(labels(8_000, 3).iter().copied());
        let mut native = DistinctSketch::new(&config_small, 7);
        native.extend_labels(labels(8_000, 4).iter().copied());
        let shrunk = big.with_capacity(128).unwrap();
        let union = shrunk.merged(&native).unwrap();
        let est = union.estimate_distinct().value;
        let rel = (est - 16_000.0).abs() / 16_000.0;
        assert!(rel < 0.4, "est {est}"); // capacity 128: coarse but sane
    }

    #[test]
    fn harmonize_heterogeneous_parties() {
        let data_a = labels(12_000, 5);
        let data_b = labels(12_000, 6);
        let mut edge = DistinctSketch::new(
            &SketchConfig::from_shape(0.2, 0.2, 256, 5, HashFamilyKind::Pairwise).unwrap(),
            8,
        );
        let mut dc = DistinctSketch::new(
            &SketchConfig::from_shape(0.05, 0.05, 4800, 29, HashFamilyKind::Pairwise).unwrap(),
            8,
        );
        edge.extend_labels(data_a.iter().copied());
        dc.extend_labels(data_b.iter().copied());
        assert!(edge.merged(&dc).is_err(), "raw shapes must not merge");

        let (e2, d2) = harmonize(&edge, &dc).unwrap();
        assert_eq!(e2.config(), d2.config());
        assert_eq!(e2.config().capacity(), 256);
        assert_eq!(e2.config().trials(), 5);
        assert_eq!(e2.config().epsilon(), 0.2);
        let union = e2.merged(&d2).unwrap();
        let est = union.estimate_distinct().value;
        let rel = (est - 24_000.0).abs() / 24_000.0;
        assert!(rel < 0.3, "est {est}");
    }

    #[test]
    fn harmonize_rejects_uncoordinated_inputs() {
        let a = DistinctSketch::new(&cfg(64, 3), 1);
        let b = DistinctSketch::new(&cfg(64, 3), 2);
        assert_eq!(harmonize(&a, &b).unwrap_err(), SketchError::SeedMismatch);
        let c = DistinctSketch::new(&cfg(64, 3).with_hash_kind(HashFamilyKind::Tabulation), 1);
        assert!(matches!(
            harmonize(&a, &c).unwrap_err(),
            SketchError::ConfigMismatch { .. }
        ));
    }

    #[test]
    fn shrink_rejects_growth_and_zero() {
        let mut s = DistinctSketch::new(&cfg(64, 3), 1);
        s.extend_labels(labels(100, 7).iter().copied());
        assert!(s.with_capacity(128).is_err());
        assert!(s.with_capacity(1).is_err());
        assert!(s.with_trials(4).is_err());
        assert!(s.with_trials(0).is_err());
    }

    #[test]
    fn shrink_preserves_items_observed() {
        let mut s = DistinctSketch::new(&cfg(64, 3), 1);
        s.extend_labels(labels(500, 8).iter().copied());
        assert_eq!(s.with_capacity(16).unwrap().items_observed(), 500);
        assert_eq!(s.with_trials(1).unwrap().items_observed(), 500);
    }

    #[test]
    fn idempotent_shrink() {
        let mut s = DistinctSketch::new(&cfg(64, 3), 9);
        s.extend_labels(labels(5_000, 9).iter().copied());
        let once = s.with_capacity(32).unwrap();
        let twice = once.with_capacity(32).unwrap();
        assert_eq!(state(&once), state(&twice));
    }
}
