//! A single coordinated-sampling trial — the paper's core data structure.
//!
//! One trial holds a seeded hash function, a *current level* `l`, and a
//! bounded sample `S` of the distinct labels seen whose hash level is at
//! least `l`. The invariants, maintained by every operation:
//!
//! 1. `S = { x observed : lvl(x) ≥ l }` — the sample is a *deterministic
//!    function of the observed label set* (given the seed). This is the
//!    coordination property: two parties with the same seed that saw the
//!    same labels hold identical samples, and a party that saw the union
//!    of two streams holds exactly the merge of the two parties' trials.
//! 2. `|S| ≤ c` (the configured capacity). When an insert would violate
//!    this, the level is *promoted* (`l += 1`) and `S` is sub-sampled,
//!    halving it in expectation, until the new label either fits or no
//!    longer qualifies.
//!
//! Since every label in `S` survives independently with probability
//! `2^{-l}` (pairwise-independently, to be precise), `|S|·2^l` is an
//! unbiased estimate of the number of distinct labels observed.

use gt_hash::{level_of_hash, survival_mask, survival_screen, HashFamily, LevelHasher, MAX_LEVEL};

use crate::error::{Result, SketchError};
use crate::metrics::InsertTally;
use crate::sampleset::{FixedCapMap, InsertOutcome};

/// Labels hashed per monomorphic kernel dispatch in the batch-ingest
/// kernels: large enough to amortize the one-per-chunk enum dispatch to
/// nothing, small enough that the hash buffers live comfortably on the
/// stack (2 × 2 KiB).
pub const KERNEL_CHUNK: usize = 256;

/// Hashes screened per [`gt_hash::survival_screen`] bitmap word inside the
/// batch kernels: one `u64` of survivor bits, so the dominant below-level
/// case costs a lane-friendly compare loop plus a popcount per 64 items
/// instead of a branch per item. Survivor indices come back out via
/// `trailing_zeros`, preserving slice order.
const SCREEN_WINDOW: usize = 64;

/// Payload attached to each sampled label.
///
/// For plain distinct counting the payload is `()`. For SumDistinct-style
/// aggregates it carries the label's value. `merge` reconciles payloads
/// when the same label arrives twice (locally or via sketch union); the
/// paper's model has the value be a function of the label, so agreement is
/// expected — implementations for numeric types keep the first-seen value,
/// matching "duplicate-insensitive" semantics.
///
/// # Canonical argument order
///
/// `merge` is **always** invoked as `stored.merge(incoming)`: `self` is
/// the payload already in the sample (first observed), `other` is the one
/// arriving later — whether the later arrival comes from the local stream
/// ([`CoordinatedTrial::insert_merging`]) or from another party's sketch
/// ([`CoordinatedTrial::merge_from`]). Implementations may rely on this
/// order; it is what makes a union of partial streams reconcile payloads
/// exactly like a single observer of the concatenated stream would.
pub trait Payload: Copy + Default {
    /// Reconcile two payloads observed for the same label. Invoked as
    /// `stored.merge(incoming)` (see the trait docs on argument order).
    fn merge(self, other: Self) -> Self;
}

impl Payload for () {
    #[inline]
    fn merge(self, _other: Self) -> Self {}
}

impl Payload for u64 {
    #[inline]
    fn merge(self, _other: Self) -> Self {
        self
    }
}

impl Payload for f64 {
    #[inline]
    fn merge(self, _other: Self) -> Self {
        self
    }
}

/// What [`CoordinatedTrial::insert`] did with an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialInsert {
    /// Label's level is below the trial's current level; not sampled.
    BelowLevel,
    /// Label entered the sample.
    Sampled,
    /// Label was already in the sample (duplicate).
    Duplicate,
    /// Inserting forced one or more level promotions first; the label was
    /// then sampled (it survived the promotions).
    SampledAfterPromotion,
    /// Inserting forced promotions that disqualified the label itself.
    EvictedByPromotion,
}

/// A single trial of coordinated adaptive sampling over labels in
/// `[0, 2^61 − 1)` with payloads `V`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoordinatedTrial<V> {
    hasher: HashFamily,
    level: u8,
    sample: FixedCapMap<V>,
    /// Items observed (including duplicates and below-level items) —
    /// diagnostics only; not part of the estimator.
    items_observed: u64,
}

impl<V: Payload> CoordinatedTrial<V> {
    /// Create a trial with the given hash function and sample capacity.
    pub fn new(hasher: HashFamily, capacity: usize) -> Self {
        CoordinatedTrial {
            hasher,
            level: 0,
            sample: FixedCapMap::with_capacity(capacity),
            items_observed: 0,
        }
    }

    /// Reconstruct a trial from transmitted state (the decode side of a
    /// wire codec). Validates the sample invariant: every entry's hash
    /// level must clear `level`, and the entry count must fit `capacity`.
    pub fn from_parts(
        hasher: HashFamily,
        capacity: usize,
        level: u8,
        items_observed: u64,
        entries: impl IntoIterator<Item = (u64, V)>,
    ) -> Result<Self> {
        if level > MAX_LEVEL {
            return Err(SketchError::InvalidConfig {
                parameter: "level",
                reason: format!("level {level} exceeds maximum {MAX_LEVEL}"),
            });
        }
        let mut sample = FixedCapMap::with_capacity(capacity);
        for (label, payload) in entries {
            // Range check before hashing: corrupted wire input can carry
            // labels outside the field (caught by the codec fuzz tests).
            if label >= gt_hash::P61 {
                return Err(SketchError::LabelOutOfRange { label });
            }
            if hasher.level(label) < level {
                return Err(SketchError::InvalidConfig {
                    parameter: "sample",
                    reason: format!("label {label} does not qualify for level {level} (corrupt or uncoordinated message)"),
                });
            }
            match sample.try_insert(label, payload) {
                InsertOutcome::Inserted => {}
                InsertOutcome::AlreadyPresent => {
                    return Err(SketchError::InvalidConfig {
                        parameter: "sample",
                        reason: format!("duplicate label {label} in transmitted sample"),
                    })
                }
                InsertOutcome::Full => {
                    return Err(SketchError::InvalidConfig {
                        parameter: "sample",
                        reason: format!("transmitted sample exceeds capacity {capacity}"),
                    })
                }
            }
        }
        Ok(CoordinatedTrial {
            hasher,
            level,
            sample,
            items_observed,
        })
    }

    /// In-place counterpart of [`CoordinatedTrial::from_parts`]: reload
    /// this trial with transmitted state, reusing the existing sample
    /// storage ([`FixedCapMap::clear`] keeps the allocation). Identical
    /// validation and error messages to `from_parts`, so the two paths are
    /// interchangeable — the referee's decode arena leans on this to
    /// decode thousands of messages with zero per-message allocation.
    ///
    /// On `Err` the trial's state is unspecified (partially reloaded);
    /// callers must discard or re-reload it before use.
    pub fn reload(
        &mut self,
        level: u8,
        items_observed: u64,
        entries: impl IntoIterator<Item = (u64, V)>,
    ) -> Result<()> {
        if level > MAX_LEVEL {
            return Err(SketchError::InvalidConfig {
                parameter: "level",
                reason: format!("level {level} exceeds maximum {MAX_LEVEL}"),
            });
        }
        self.sample.clear();
        self.level = level;
        self.items_observed = items_observed;
        let capacity = self.capacity();
        for (label, payload) in entries {
            if label >= gt_hash::P61 {
                return Err(SketchError::LabelOutOfRange { label });
            }
            if self.hasher.level(label) < level {
                return Err(SketchError::InvalidConfig {
                    parameter: "sample",
                    reason: format!("label {label} does not qualify for level {level} (corrupt or uncoordinated message)"),
                });
            }
            match self.sample.try_insert(label, payload) {
                InsertOutcome::Inserted => {}
                InsertOutcome::AlreadyPresent => {
                    return Err(SketchError::InvalidConfig {
                        parameter: "sample",
                        reason: format!("duplicate label {label} in transmitted sample"),
                    })
                }
                InsertOutcome::Full => {
                    return Err(SketchError::InvalidConfig {
                        parameter: "sample",
                        reason: format!("transmitted sample exceeds capacity {capacity}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Current sampling level `l` (sampling probability `2^{-l}`).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Number of labels currently sampled.
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }

    /// The sample capacity `c`.
    pub fn capacity(&self) -> usize {
        self.sample.capacity()
    }

    /// Total items observed by this trial (duplicates included).
    pub fn items_observed(&self) -> u64 {
        self.items_observed
    }

    /// The hash function driving this trial (parties must agree on it).
    pub fn hasher(&self) -> &HashFamily {
        &self.hasher
    }

    /// Deduct `n` previously-credited items from the diagnostics counter
    /// (saturating). Only [`crate::GtSketch::merge_refresh_from`] calls
    /// this, to cancel the double-count when a party's refreshed snapshot
    /// replaces an already-merged older one.
    pub(crate) fn debit_items(&mut self, n: u64) {
        self.items_observed = self.items_observed.saturating_sub(n);
    }

    /// Iterate over the sampled `(label, payload)` pairs.
    pub fn sample_iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.sample.iter()
    }

    /// Whether `label` is currently in the sample.
    pub fn contains_label(&self, label: u64) -> bool {
        self.sample.contains(label)
    }

    /// The sample as a label-sorted `Vec` of `(label, hash level)` pairs —
    /// the precomputed view the expression engine aligns trials with.
    ///
    /// Because the sample invariant is `S = {x : lvl(x) ≥ level}`, the
    /// subset of this view with `hash level ≥ l` for any `l ≥ level` is
    /// *exactly* the sample this trial would hold after
    /// [`CoordinatedTrial::subsample_to_level`]`(l)` — so one pass over
    /// the sample (hashing each entry once) supports alignment to every
    /// later-chosen common level with no cloning or re-subsampling.
    pub fn leveled_sample(&self) -> Vec<(u64, u8)> {
        let mut view: Vec<(u64, u8)> = self
            .sample
            .iter()
            .map(|(label, _)| (label, self.hasher.level(label)))
            .collect();
        view.sort_unstable_by_key(|&(label, _)| label);
        view
    }

    /// Bytes of heap storage used by the sample (space accounting).
    pub fn heap_bytes(&self) -> usize {
        self.sample.heap_bytes()
    }

    /// Observe one `(label, payload)` item from the stream.
    ///
    /// Labels must lie in `[0, 2^61 − 1)`; larger values are folded mod
    /// `2^61 − 1` by the hash arithmetic (use `gt_hash::fold61` for
    /// full-range labels). Amortized cost is O(1) hash evaluations plus,
    /// over the whole stream, O(log F₀) sub-sampling sweeps.
    #[inline]
    pub fn insert(&mut self, label: u64, payload: V) -> TrialInsert {
        self.items_observed += 1;
        let lvl = self.hasher.level(label);
        if lvl < self.level {
            return TrialInsert::BelowLevel;
        }
        self.insert_qualified(label, lvl, payload)
    }

    /// Sample-insertion slow path shared by [`CoordinatedTrial::insert`]
    /// and the batch kernels: the label is already known to qualify
    /// (`lvl ≥ self.level`) and `items_observed` is already counted.
    #[inline]
    fn insert_qualified(&mut self, label: u64, lvl: u8, payload: V) -> TrialInsert {
        debug_assert!(lvl >= self.level);
        let mut promoted = false;
        loop {
            match self.sample.try_insert(label, payload) {
                InsertOutcome::Inserted => {
                    return if promoted {
                        TrialInsert::SampledAfterPromotion
                    } else {
                        TrialInsert::Sampled
                    };
                }
                InsertOutcome::AlreadyPresent => return TrialInsert::Duplicate,
                InsertOutcome::Full => {
                    self.promote();
                    promoted = true;
                    if lvl < self.level {
                        return TrialInsert::EvictedByPromotion;
                    }
                }
            }
        }
    }

    /// Batch-observe a slice of labels (payload `V::default()`) through
    /// the monomorphic ingest kernel.
    ///
    /// Per [`KERNEL_CHUNK`]-sized chunk: one [`HashFamily::hash_slice_into`]
    /// call hashes the whole chunk with the family enum dispatched once,
    /// then `SCREEN_WINDOW`-wide windows are screened lane-wise with
    /// [`gt_hash::survival_screen`] — the dominant below-level case is
    /// retired a bitmap word at a time, no per-item branch and no map
    /// probe — and only the surviving bits take the sample-insertion slow
    /// path (reusing the already-computed hash for their level). Outcomes
    /// accumulate into `tally`; callers flush it once per batch via
    /// `SketchMetrics::record_insert_tally`.
    ///
    /// Why the screen is exact and not merely approximate: the survival
    /// mask is monotone in the level, and the level never decreases, so an
    /// item that fails the window-entry mask fails every later mask too —
    /// it can be counted `below_level` immediately. Survivors are
    /// re-checked against the *current* mask in slice order, because an
    /// insert earlier in the window may have promoted the level.
    ///
    /// Bitwise-identical in sample, level, `items_observed`, and tallied
    /// outcomes to calling [`CoordinatedTrial::insert`] per item in slice
    /// order (property-tested).
    pub fn extend_labels_kernel(&mut self, labels: &[u64], tally: &mut InsertTally) {
        let level_before = self.level;
        let mut hashes = [0u64; KERNEL_CHUNK];
        for chunk in labels.chunks(KERNEL_CHUNK) {
            let hashes = &mut hashes[..chunk.len()];
            self.hasher.hash_slice_into(chunk, hashes);
            self.items_observed += chunk.len() as u64;
            let mut w = 0;
            while w < chunk.len() {
                let wlen = (chunk.len() - w).min(SCREEN_WINDOW);
                let mut mask = survival_mask(self.level);
                let mut bits = survival_screen(&hashes[w..w + wlen], mask);
                tally.below_level += u64::from(wlen as u32 - bits.count_ones());
                while bits != 0 {
                    let i = w + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let h = hashes[i];
                    // Re-check: an insert earlier in this window may have
                    // promoted the level past this hash.
                    if h & mask != 0 {
                        tally.below_level += 1;
                        continue;
                    }
                    tally.record(self.insert_qualified(chunk[i], level_of_hash(h), V::default()));
                    mask = survival_mask(self.level);
                }
                w += wlen;
            }
        }
        tally.promotions += u64::from(self.level - level_before);
    }

    /// Batch-observe `(label, payload)` pairs through the same kernel as
    /// [`CoordinatedTrial::extend_labels_kernel`]. With `MERGING = true`,
    /// duplicate arrivals reconcile payloads in place as
    /// `stored.merge(incoming)` — the canonical argument order — and count
    /// into `tally.local_reconciliations`; with `MERGING = false` the
    /// stored payload is kept untouched, matching
    /// [`CoordinatedTrial::insert`].
    pub fn extend_pairs_kernel<const MERGING: bool>(
        &mut self,
        items: &[(u64, V)],
        tally: &mut InsertTally,
    ) {
        let level_before = self.level;
        let mut labels = [0u64; KERNEL_CHUNK];
        let mut hashes = [0u64; KERNEL_CHUNK];
        for chunk in items.chunks(KERNEL_CHUNK) {
            let labels = &mut labels[..chunk.len()];
            for (slot, &(label, _)) in labels.iter_mut().zip(chunk.iter()) {
                *slot = label;
            }
            let hashes = &mut hashes[..chunk.len()];
            self.hasher.hash_slice_into(labels, hashes);
            self.items_observed += chunk.len() as u64;
            let mut w = 0;
            while w < chunk.len() {
                let wlen = (chunk.len() - w).min(SCREEN_WINDOW);
                let mut mask = survival_mask(self.level);
                let mut bits = survival_screen(&hashes[w..w + wlen], mask);
                tally.below_level += u64::from(wlen as u32 - bits.count_ones());
                while bits != 0 {
                    let i = w + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let h = hashes[i];
                    if h & mask != 0 {
                        tally.below_level += 1;
                        continue;
                    }
                    let (label, payload) = chunk[i];
                    let outcome = self.insert_qualified(label, level_of_hash(h), payload);
                    tally.record(outcome);
                    if MERGING && outcome == TrialInsert::Duplicate {
                        self.sample.update(label, |v| *v = v.merge(payload));
                        tally.local_reconciliations += 1;
                    }
                    mask = survival_mask(self.level);
                }
                w += wlen;
            }
        }
        tally.promotions += u64::from(self.level - level_before);
    }

    /// Like [`CoordinatedTrial::insert`], but a duplicate arrival *merges*
    /// its payload into the stored one as `stored.merge(incoming)` —
    /// the **same argument order** [`CoordinatedTrial::merge_from`] uses
    /// when both sides of a union sampled the label, so a local stream and
    /// a union of partial streams reconcile identically (keep-first for
    /// the built-in payload types). Used by payloads that accumulate
    /// per-label state across arrivals (e.g. latest-timestamp tracking);
    /// plain distinct counting sticks with `insert`, which skips the extra
    /// probe work on duplicates.
    #[inline]
    pub fn insert_merging(&mut self, label: u64, payload: V) -> TrialInsert {
        let outcome = self.insert(label, payload);
        if outcome == TrialInsert::Duplicate {
            self.sample.update(label, |v| *v = v.merge(payload));
        }
        outcome
    }

    /// Raise the level by one and sub-sample. Each stored label survives
    /// iff its hash level clears the new threshold (prob. ½ each,
    /// pairwise-independently).
    fn promote(&mut self) {
        assert!(
            self.level < MAX_LEVEL,
            "level overflow: >{} labels share {MAX_LEVEL} trailing zero bits — \
             astronomically unlikely under a sound hash; check the hash family",
            self.capacity()
        );
        self.level += 1;
        let threshold = self.level;
        let hasher = self.hasher.clone();
        self.sample
            .retain(|label, _| hasher.level(label) >= threshold);
    }

    /// Force the trial down to sampling level `target ≥ self.level`,
    /// discarding sample entries that do not qualify. Used by the referee
    /// to align trials from different parties before union.
    pub fn subsample_to_level(&mut self, target: u8) {
        assert!(
            target >= self.level,
            "cannot lower a sampling level ({} -> {target}): discarded labels cannot be recovered",
            self.level
        );
        if target == self.level {
            return;
        }
        self.level = target;
        let hasher = self.hasher.clone();
        self.sample.retain(|label, _| hasher.level(label) >= target);
    }

    /// A copy of this trial shrunk to a smaller capacity: the level is
    /// promoted until the sample fits.
    ///
    /// Because promotion is monotone and only ever happens on overflow,
    /// the result is *exactly* the trial a party with `new_capacity` would
    /// have ended at after observing the same label set (the final level
    /// is the minimal `l` with `|{x : lvl(x) ≥ l}| ≤ c` either way) — so
    /// shrunken sketches remain coordinated. Verified by test.
    ///
    /// # Panics
    /// Panics if `new_capacity` is 0 or larger than the current capacity
    /// (growing cannot restore discarded labels).
    pub fn shrunk_to_capacity(&self, new_capacity: usize) -> CoordinatedTrial<V> {
        assert!(
            (1..=self.capacity()).contains(&new_capacity),
            "new capacity {new_capacity} must be in [1, {}]",
            self.capacity()
        );
        let mut out = CoordinatedTrial {
            hasher: self.hasher.clone(),
            level: self.level,
            sample: FixedCapMap::with_capacity(new_capacity),
            items_observed: self.items_observed,
        };
        // Find the minimal level at which the sample fits, then copy the
        // qualifying entries.
        let mut level = self.level;
        loop {
            let count = self
                .sample
                .iter()
                .filter(|&(label, _)| self.hasher.level(label) >= level)
                .count();
            if count <= new_capacity {
                break;
            }
            assert!(level < MAX_LEVEL, "level overflow while shrinking");
            level += 1;
        }
        out.level = level;
        for (label, payload) in self.sample.iter() {
            if self.hasher.level(label) >= level {
                let r = out.sample.try_insert(label, payload);
                debug_assert_eq!(r, InsertOutcome::Inserted);
            }
        }
        out
    }

    /// This trial's estimate of the number of distinct labels observed:
    /// `|S| · 2^l`. Exact whenever the level never left 0.
    pub fn estimate_distinct(&self) -> f64 {
        self.sample.len() as f64 * 2f64.powi(self.level as i32)
    }

    /// This trial's estimate of `Σ_{distinct x} payload(x)` via
    /// `2^l · Σ_{x ∈ S} payload(x)` (payload convertible to f64 by caller).
    pub fn estimate_weighted(&self, weight: impl Fn(u64, V) -> f64) -> f64 {
        let sum: f64 = self.sample.iter().map(|(k, v)| weight(k, v)).sum();
        sum * 2f64.powi(self.level as i32)
    }

    /// Merge another trial *of the same hash function* into this one,
    /// producing exactly the trial a single party would hold had it
    /// observed both streams (the referee's union step). Returns a
    /// [`TrialMergeReport`] accounting for every entry of `other` —
    /// observability for the union path, mirroring what [`TrialInsert`]
    /// provides for the local path.
    ///
    /// Runs the bulk kernel ([`CoordinatedTrial::merge_from_kernel`]);
    /// [`CoordinatedTrial::merge_from_reference`] is the per-entry
    /// original, kept as the equivalence oracle.
    #[inline]
    pub fn merge_from(&mut self, other: &CoordinatedTrial<V>) -> Result<TrialMergeReport> {
        self.merge_from_kernel(other)
    }

    /// Bulk-kernel union: after aligning to the max level, the incoming
    /// sample is gathered into [`KERNEL_CHUNK`]-sized stack arrays and
    /// hashed with one [`HashFamily::hash_slice_into`] call per chunk (the
    /// family enum dispatched once, not per entry); the raw hashes are
    /// then screened a `SCREEN_WINDOW`-wide bitmap word at a time with
    /// [`gt_hash::survival_screen`] — the dominant below-level case is
    /// retired lane-wise with no per-entry branch, map probe, or
    /// `level()` re-hash — and only surviving bits take the insertion
    /// path, reusing the already-computed hash for their level. Survivors
    /// are re-checked against the current mask in order because an
    /// overflow can promote the level mid-window; that re-check (plus the
    /// monotonicity of the mask in the level) is what keeps the surviving
    /// set, the report classification, and the final state
    /// bitwise-identical to
    /// [`CoordinatedTrial::merge_from_reference`] (property-tested). No
    /// reserve-ahead growth is needed at this layer: the open-addressed
    /// sample table is pre-sized to `capacity` at construction, so bulk
    /// insertion never reallocates.
    pub fn merge_from_kernel(&mut self, other: &CoordinatedTrial<V>) -> Result<TrialMergeReport> {
        if self.hasher != other.hasher {
            return Err(SketchError::SeedMismatch);
        }
        if self.capacity() != other.capacity() {
            return Err(SketchError::ConfigMismatch {
                detail: format!("trial capacity {} vs {}", self.capacity(), other.capacity()),
            });
        }
        let level_before = self.level;
        let mut report = TrialMergeReport::default();
        // Align to the higher of the two levels first.
        if other.level > self.level {
            self.subsample_to_level(other.level);
        }
        let mut labels = [0u64; KERNEL_CHUNK];
        let mut payloads = [V::default(); KERNEL_CHUNK];
        let mut hashes = [0u64; KERNEL_CHUNK];
        let mut it = other.sample.iter();
        loop {
            let mut n = 0;
            for (label, payload) in it.by_ref() {
                labels[n] = label;
                payloads[n] = payload;
                n += 1;
                if n == KERNEL_CHUNK {
                    break;
                }
            }
            if n == 0 {
                break;
            }
            self.hasher.hash_slice_into(&labels[..n], &mut hashes[..n]);
            report.entries_scanned += n;
            let mut w = 0;
            while w < n {
                let wlen = (n - w).min(SCREEN_WINDOW);
                let mut mask = survival_mask(self.level);
                let mut bits = survival_screen(&hashes[w..w + wlen], mask);
                // Entries screened out here ran at `other`'s lower level
                // and no longer qualify; the mask is monotone in the
                // level, so counting them out on the window-entry mask is
                // exact.
                report.below_level += wlen - bits.count_ones() as usize;
                while bits != 0 {
                    let i = w + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let (label, payload, h) = (labels[i], payloads[i], hashes[i]);
                    // Re-check: an absorption earlier in this window may
                    // have promoted the level past this hash.
                    if h & mask != 0 {
                        report.below_level += 1;
                        continue;
                    }
                    loop {
                        match self.sample.try_insert(label, payload) {
                            InsertOutcome::Inserted => {
                                report.absorbed += 1;
                                break;
                            }
                            InsertOutcome::AlreadyPresent => {
                                self.sample.update(label, |v| *v = v.merge(payload));
                                report.reconciled += 1;
                                break;
                            }
                            InsertOutcome::Full => {
                                self.promote();
                                if level_of_hash(h) < self.level {
                                    report.below_level += 1;
                                    break;
                                }
                            }
                        }
                    }
                    mask = survival_mask(self.level);
                }
                w += wlen;
            }
            if n < KERNEL_CHUNK {
                break;
            }
        }
        self.items_observed += other.items_observed;
        report.promotions = u32::from(self.level - level_before);
        Ok(report)
    }

    /// The per-entry union path [`CoordinatedTrial::merge_from`] ran
    /// before the bulk kernel existed: one `hasher.level(label)` re-hash
    /// and one map probe per incoming entry. Kept public as the
    /// equivalence oracle — tests assert the kernel matches it bitwise in
    /// state *and* report — and as the readable specification of union
    /// semantics.
    pub fn merge_from_reference(
        &mut self,
        other: &CoordinatedTrial<V>,
    ) -> Result<TrialMergeReport> {
        if self.hasher != other.hasher {
            return Err(SketchError::SeedMismatch);
        }
        if self.capacity() != other.capacity() {
            return Err(SketchError::ConfigMismatch {
                detail: format!("trial capacity {} vs {}", self.capacity(), other.capacity()),
            });
        }
        let level_before = self.level;
        let mut report = TrialMergeReport::default();
        // Align to the higher of the two levels first.
        if other.level > self.level {
            self.subsample_to_level(other.level);
        }
        for (label, payload) in other.sample.iter() {
            report.entries_scanned += 1;
            if self.hasher.level(label) < self.level {
                report.below_level += 1;
                continue; // other ran at a lower level; this label no longer qualifies
            }
            loop {
                match self.sample.try_insert(label, payload) {
                    InsertOutcome::Inserted => {
                        report.absorbed += 1;
                        break;
                    }
                    InsertOutcome::AlreadyPresent => {
                        // Both sides sampled this label: reconcile payloads
                        // in place as `stored.merge(incoming)` — the same
                        // argument order `insert_merging` uses locally
                        // (keep-first for the built-in payload types,
                        // custom for user payloads).
                        self.sample.update(label, |v| *v = v.merge(payload));
                        report.reconciled += 1;
                        break;
                    }
                    InsertOutcome::Full => {
                        self.promote();
                        if self.hasher.level(label) < self.level {
                            report.below_level += 1;
                            break;
                        }
                    }
                }
            }
        }
        self.items_observed += other.items_observed;
        report.promotions = u32::from(self.level - level_before);
        Ok(report)
    }
}

/// Accounting for one [`CoordinatedTrial::merge_from`] call: what happened
/// to each entry of the absorbed trial, and how far the level moved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrialMergeReport {
    /// Entries of the other trial's sample examined.
    pub entries_scanned: usize,
    /// Entries newly inserted into this trial's sample.
    pub absorbed: usize,
    /// Entries present on both sides whose payloads were reconciled via
    /// `stored.merge(incoming)`.
    pub reconciled: usize,
    /// Entries skipped because they no longer qualify at the aligned (or
    /// promoted) level.
    pub below_level: usize,
    /// Level promotions this merge caused (alignment plus overflow).
    pub promotions: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_hash::{FamilySeed, HashFamilyKind};

    fn trial(capacity: usize, seed: u64) -> CoordinatedTrial<()> {
        CoordinatedTrial::new(HashFamilyKind::Pairwise.build(FamilySeed(seed)), capacity)
    }

    fn labels(n: u64, salt: u64) -> impl Iterator<Item = u64> {
        (0..n).map(move |i| gt_hash::fold61(i ^ (salt << 32)))
    }

    #[test]
    fn small_sets_are_counted_exactly() {
        let mut t = trial(64, 1);
        for x in labels(50, 0) {
            t.insert(x, ());
        }
        assert_eq!(t.level(), 0);
        assert_eq!(t.estimate_distinct(), 50.0);
    }

    #[test]
    fn duplicates_do_not_change_state() {
        let mut t = trial(64, 1);
        for x in labels(50, 0) {
            t.insert(x, ());
        }
        let before_len = t.sample_len();
        let before_level = t.level();
        let mut dup_seen = false;
        for x in labels(50, 0) {
            let r = t.insert(x, ());
            dup_seen |= r == TrialInsert::Duplicate;
            assert!(matches!(
                r,
                TrialInsert::Duplicate | TrialInsert::BelowLevel
            ));
        }
        assert!(dup_seen);
        assert_eq!(t.sample_len(), before_len);
        assert_eq!(t.level(), before_level);
        assert_eq!(t.estimate_distinct(), 50.0);
        assert_eq!(t.items_observed(), 100);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut t = trial(32, 2);
        for x in labels(10_000, 1) {
            t.insert(x, ());
            assert!(t.sample_len() <= 32);
        }
        assert!(t.level() > 0, "10k distinct into capacity 32 must promote");
    }

    #[test]
    fn sample_invariant_holds_after_promotions() {
        // Every sampled label has level ≥ trial level; every observed label
        // with level ≥ trial level is in the sample.
        let mut t = trial(32, 3);
        let observed: Vec<u64> = labels(5_000, 2).collect();
        for &x in &observed {
            t.insert(x, ());
        }
        let hasher = t.hasher().clone();
        let l = t.level();
        let sampled: std::collections::HashSet<u64> = t.sample_iter().map(|(k, _)| k).collect();
        for &x in &observed {
            let qualifies = hasher.level(x) >= l;
            assert_eq!(sampled.contains(&x), qualifies, "label {x}");
        }
    }

    #[test]
    fn estimate_is_close_for_large_sets() {
        let mut t = trial(4096, 4);
        let n = 100_000u64;
        for x in labels(n, 3) {
            t.insert(x, ());
        }
        let est = t.estimate_distinct();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "estimate {est} vs {n} (rel {rel})");
    }

    #[test]
    fn coordination_insertion_order_is_irrelevant() {
        let mut a = trial(32, 5);
        let mut b = trial(32, 5);
        let v: Vec<u64> = labels(2_000, 4).collect();
        for &x in &v {
            a.insert(x, ());
        }
        for &x in v.iter().rev() {
            b.insert(x, ());
        }
        assert_eq!(a.level(), b.level());
        let sa: std::collections::BTreeSet<u64> = a.sample_iter().map(|(k, _)| k).collect();
        let sb: std::collections::BTreeSet<u64> = b.sample_iter().map(|(k, _)| k).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn merge_equals_single_party_on_concatenation() {
        let v1: Vec<u64> = labels(3_000, 5).collect();
        let v2: Vec<u64> = labels(3_000, 6).collect();
        let mut a = trial(64, 7);
        let mut b = trial(64, 7);
        let mut whole = trial(64, 7);
        for &x in &v1 {
            a.insert(x, ());
            whole.insert(x, ());
        }
        for &x in &v2 {
            b.insert(x, ());
            whole.insert(x, ());
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.level(), whole.level());
        let sa: std::collections::BTreeSet<u64> = a.sample_iter().map(|(k, _)| k).collect();
        let sw: std::collections::BTreeSet<u64> = whole.sample_iter().map(|(k, _)| k).collect();
        assert_eq!(sa, sw);
        assert_eq!(a.items_observed(), whole.items_observed());
    }

    #[test]
    fn merge_with_overlap_is_duplicate_insensitive() {
        let shared: Vec<u64> = labels(1_000, 8).collect();
        let mut a = trial(64, 9);
        let mut b = trial(64, 9);
        for &x in &shared {
            a.insert(x, ());
            b.insert(x, ());
        }
        let solo_estimate = a.estimate_distinct();
        a.merge_from(&b).unwrap();
        assert_eq!(
            a.estimate_distinct(),
            solo_estimate,
            "identical streams must merge to themselves"
        );
    }

    #[test]
    fn merge_rejects_different_seeds() {
        let mut a = trial(16, 1);
        let b = trial(16, 2);
        assert_eq!(a.merge_from(&b), Err(SketchError::SeedMismatch));
    }

    #[test]
    fn merge_rejects_different_capacities() {
        let hasher = HashFamilyKind::Pairwise.build(FamilySeed(1));
        let mut a: CoordinatedTrial<()> = CoordinatedTrial::new(hasher.clone(), 16);
        let b: CoordinatedTrial<()> = CoordinatedTrial::new(hasher, 32);
        assert!(matches!(
            a.merge_from(&b),
            Err(SketchError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn subsample_to_level_halves_in_expectation() {
        let mut t = trial(8192, 10);
        for x in labels(8_000, 9) {
            t.insert(x, ());
        }
        assert_eq!(t.level(), 0);
        let n0 = t.sample_len() as f64;
        t.subsample_to_level(2);
        let n2 = t.sample_len() as f64;
        assert!(
            (n2 - n0 / 4.0).abs() < 6.0 * (n0 / 4.0).sqrt(),
            "n0 {n0} n2 {n2}"
        );
        assert_eq!(t.level(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot lower a sampling level")]
    fn subsample_cannot_lower_level() {
        let mut t = trial(4, 11);
        for x in labels(100, 10) {
            t.insert(x, ());
        }
        let l = t.level();
        t.subsample_to_level(l - 1);
    }

    #[test]
    fn weighted_estimate_scales_payloads() {
        let hasher = HashFamilyKind::Pairwise.build(FamilySeed(12));
        let mut t: CoordinatedTrial<u64> = CoordinatedTrial::new(hasher, 128);
        for x in 0..100u64 {
            t.insert(gt_hash::fold61(x), 3);
        }
        // Level 0 ⇒ exact: 100 labels × weight 3.
        assert_eq!(t.estimate_weighted(|_, v| v as f64), 300.0);
        assert_eq!(t.estimate_distinct(), 100.0);
    }

    #[test]
    fn from_parts_validates_transmitted_state() {
        let hasher = HashFamilyKind::Pairwise.build(FamilySeed(3));
        // Out-of-field label rejected.
        let r = CoordinatedTrial::<()>::from_parts(hasher.clone(), 8, 0, 1, vec![(u64::MAX, ())]);
        assert!(matches!(r, Err(SketchError::LabelOutOfRange { .. })));
        // Level violation rejected: find a level-0 label, claim level 5.
        let lvl0 = (0..10_000u64)
            .map(gt_hash::fold61)
            .find(|&x| {
                use gt_hash::LevelHasher;
                hasher.level(x) == 0
            })
            .unwrap();
        let r = CoordinatedTrial::<()>::from_parts(hasher.clone(), 8, 5, 1, vec![(lvl0, ())]);
        assert!(r.is_err());
        // Over-capacity rejected.
        let entries: Vec<(u64, ())> = (0..10u64).map(|i| (gt_hash::fold61(i), ())).collect();
        let r = CoordinatedTrial::from_parts(hasher.clone(), 4, 0, 10, entries.clone());
        assert!(r.is_err());
        // Valid state round-trips.
        let ok = CoordinatedTrial::from_parts(hasher, 16, 0, 10, entries).unwrap();
        assert_eq!(ok.sample_len(), 10);
        assert_eq!(ok.items_observed(), 10);
    }

    #[test]
    fn merge_report_accounts_for_every_entry() {
        let v1: Vec<u64> = labels(2_000, 20).collect();
        let v2: Vec<u64> = labels(2_000, 21).collect();
        let shared: Vec<u64> = labels(500, 22).collect();
        let mut a = trial(64, 23);
        let mut b = trial(64, 23);
        for &x in v1.iter().chain(&shared) {
            a.insert(x, ());
        }
        for &x in v2.iter().chain(&shared) {
            b.insert(x, ());
        }
        let b_len = b.sample_len();
        let a_level_before = a.level();
        let report = a.merge_from(&b).unwrap();
        assert_eq!(report.entries_scanned, b_len);
        assert_eq!(
            report.absorbed + report.reconciled + report.below_level,
            report.entries_scanned,
            "every scanned entry must be classified"
        );
        assert!(report.reconciled > 0, "shared labels must reconcile");
        assert_eq!(report.promotions, u32::from(a.level() - a_level_before));
    }

    #[test]
    fn local_merging_and_union_reconcile_in_the_same_order() {
        // Regression for the payload-merge asymmetry: with a keep-first
        // payload (u64), the same label carrying different payloads must
        // resolve to the *first observed* payload both when the duplicate
        // arrives locally (insert_merging) and when it arrives via union
        // (merge_from).
        let hasher = HashFamilyKind::Pairwise.build(FamilySeed(31));
        let label = gt_hash::fold61(0xFEED);

        let mut local: CoordinatedTrial<u64> = CoordinatedTrial::new(hasher.clone(), 16);
        local.insert_merging(label, 111);
        local.insert_merging(label, 222);

        let mut first: CoordinatedTrial<u64> = CoordinatedTrial::new(hasher.clone(), 16);
        first.insert_merging(label, 111);
        let mut second: CoordinatedTrial<u64> = CoordinatedTrial::new(hasher, 16);
        second.insert_merging(label, 222);
        let report = first.merge_from(&second).unwrap();
        assert_eq!(report.reconciled, 1);

        let local_payload = local.sample_iter().find(|&(k, _)| k == label).unwrap().1;
        let union_payload = first.sample_iter().find(|&(k, _)| k == label).unwrap().1;
        assert_eq!(local_payload, 111, "local path must keep the first payload");
        assert_eq!(union_payload, 111, "union path must keep the first payload");
    }

    #[test]
    fn labels_kernel_is_bitwise_identical_to_per_item_insert() {
        // Sizes straddle KERNEL_CHUNK so both the full-chunk and the
        // remainder paths run, and the capacity forces mid-batch
        // promotions (the mask-refresh path).
        for n in [0u64, 1, 255, 256, 257, 5_000] {
            let v: Vec<u64> = labels(n, 30).collect();
            let mut per_item = trial(32, 31);
            let mut per_item_tally = InsertTally::default();
            for &x in &v {
                let before = per_item.level();
                per_item_tally.record(per_item.insert(x, ()));
                per_item_tally.promotions += u64::from(per_item.level() - before);
            }
            let mut kernel = trial(32, 31);
            let mut kernel_tally = InsertTally::default();
            kernel.extend_labels_kernel(&v, &mut kernel_tally);
            assert_eq!(kernel.level(), per_item.level(), "n = {n}");
            assert_eq!(kernel.items_observed(), per_item.items_observed());
            let set = |t: &CoordinatedTrial<()>| -> std::collections::BTreeSet<u64> {
                t.sample_iter().map(|(k, _)| k).collect()
            };
            assert_eq!(set(&kernel), set(&per_item), "n = {n}");
            assert_eq!(kernel_tally, per_item_tally, "n = {n}");
        }
    }

    #[test]
    fn merging_pairs_kernel_reconciles_like_insert_merging() {
        let hasher = HashFamilyKind::Pairwise.build(FamilySeed(33));
        let items: Vec<(u64, u64)> = labels(3_000, 32)
            .chain(labels(3_000, 32)) // second pass: all duplicates
            .enumerate()
            .map(|(i, l)| (l, i as u64))
            .collect();
        let mut per_item: CoordinatedTrial<u64> = CoordinatedTrial::new(hasher.clone(), 64);
        for &(l, p) in &items {
            per_item.insert_merging(l, p);
        }
        let mut kernel: CoordinatedTrial<u64> = CoordinatedTrial::new(hasher, 64);
        let mut tally = InsertTally::default();
        kernel.extend_pairs_kernel::<true>(&items, &mut tally);
        let state = |t: &CoordinatedTrial<u64>| -> std::collections::BTreeMap<u64, u64> {
            t.sample_iter().collect()
        };
        assert_eq!(state(&kernel), state(&per_item));
        assert_eq!(kernel.level(), per_item.level());
        assert_eq!(tally.duplicate, tally.local_reconciliations);
    }

    #[test]
    fn merge_kernel_is_bitwise_identical_to_reference() {
        // Sweep sample sizes straddling KERNEL_CHUNK, level skews in both
        // directions, and capacities that force mid-merge promotions, and
        // require identical state *and* identical merge reports.
        let state = |t: &CoordinatedTrial<u64>| {
            (
                t.level(),
                t.items_observed(),
                t.sample_iter()
                    .collect::<std::collections::BTreeMap<_, _>>(),
            )
        };
        for (cap, n_a, n_b, salt) in [
            (512, 100u64, 50u64, 40u64), // no promotions, sub-chunk
            (512, 600, 700, 41),         // straddles KERNEL_CHUNK
            (32, 3_000, 200, 42),        // self at higher level: other aligns up
            (32, 200, 3_000, 43),        // other at higher level: self subsamples
            (32, 2_000, 2_000, 44),      // overflow during the merge itself
        ] {
            let hasher = HashFamilyKind::Pairwise.build(FamilySeed(77));
            let build = |n: u64, payload_salt: u64| {
                let mut t: CoordinatedTrial<u64> = CoordinatedTrial::new(hasher.clone(), cap);
                for x in labels(n, salt) {
                    // Shared label prefix across parties, but payloads
                    // disagree — reconciliation order is observable.
                    t.insert_merging(x, x.wrapping_mul(3) ^ payload_salt);
                }
                t
            };
            let a = build(n_a, 1);
            let b = build(n_b, 2);

            let mut via_reference = a.clone();
            let ref_report = via_reference.merge_from_reference(&b).unwrap();
            let mut via_kernel = a.clone();
            let kernel_report = via_kernel.merge_from_kernel(&b).unwrap();
            assert_eq!(
                state(&via_kernel),
                state(&via_reference),
                "cap {cap} salt {salt}"
            );
            assert_eq!(kernel_report, ref_report, "cap {cap} salt {salt}");
        }
    }

    #[test]
    fn merge_kernel_rejects_like_reference() {
        let mut a = trial(16, 1);
        let b = trial(16, 2);
        assert_eq!(a.merge_from_kernel(&b), Err(SketchError::SeedMismatch));
        let hasher = HashFamilyKind::Pairwise.build(FamilySeed(1));
        let mut a: CoordinatedTrial<()> = CoordinatedTrial::new(hasher.clone(), 16);
        let b: CoordinatedTrial<()> = CoordinatedTrial::new(hasher, 32);
        assert!(matches!(
            a.merge_from_kernel(&b),
            Err(SketchError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn reload_matches_from_parts() {
        let hasher = HashFamilyKind::Pairwise.build(FamilySeed(3));
        let entries: Vec<(u64, ())> = (0..10u64).map(|i| (gt_hash::fold61(i), ())).collect();
        let fresh =
            CoordinatedTrial::from_parts(hasher.clone(), 16, 0, 10, entries.clone()).unwrap();
        let mut reused: CoordinatedTrial<()> = CoordinatedTrial::new(hasher.clone(), 16);
        // Dirty the trial first so clear() actually has work to do.
        for x in labels(200, 50) {
            reused.insert(x, ());
        }
        reused.reload(0, 10, entries.clone()).unwrap();
        assert_eq!(reused.level(), fresh.level());
        assert_eq!(reused.items_observed(), fresh.items_observed());
        let set = |t: &CoordinatedTrial<()>| -> std::collections::BTreeSet<u64> {
            t.sample_iter().map(|(k, _)| k).collect()
        };
        assert_eq!(set(&reused), set(&fresh));
        // Same rejections as from_parts.
        assert!(matches!(
            reused.reload(0, 1, vec![(u64::MAX, ())]),
            Err(SketchError::LabelOutOfRange { .. })
        ));
        let mut reused: CoordinatedTrial<()> = CoordinatedTrial::new(hasher, 4);
        assert!(reused.reload(0, 10, entries).is_err(), "over capacity");
    }

    #[test]
    fn insert_outcome_classification() {
        let mut t = trial(2, 13);
        // Find labels of level ≥ 1 and level 0 to steer outcomes.
        let hasher = t.hasher().clone();
        let mut lvl0 = None;
        for x in 0..10_000u64 {
            let x = gt_hash::fold61(x);
            if hasher.level(x) == 0 {
                lvl0 = Some(x);
                break;
            }
        }
        let lvl0 = lvl0.expect("a level-0 label exists");
        assert_eq!(t.insert(lvl0, ()), TrialInsert::Sampled);
        assert_eq!(t.insert(lvl0, ()), TrialInsert::Duplicate);
        // Fill to capacity with higher-level labels, forcing promotion;
        // lvl0 label is evicted and future inserts of it report BelowLevel.
        let mut inserted = 1;
        for x in 10_000..200_000u64 {
            let x = gt_hash::fold61(x);
            if hasher.level(x) >= 1 {
                t.insert(x, ());
                inserted += 1;
                if inserted > 3 {
                    break;
                }
            }
        }
        assert!(t.level() >= 1);
        assert_eq!(t.insert(lvl0, ()), TrialInsert::BelowLevel);
    }
}
