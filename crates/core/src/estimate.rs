//! Median-boosting machinery and the estimate type returned by sketches.
//!
//! Each trial's estimate is within `±ε` of the truth with some constant
//! probability `> 1/2` (Chebyshev, from the capacity choice). Taking the
//! **median** of `r` independent trials turns that constant into `1 − δ`:
//! the median can only miss if at least half the trials miss, which a
//! Chernoff bound drives to `exp(−Θ(r))`. Experiment E2 measures this decay
//! directly.

/// Median of a slice, destructively (uses `select_nth_unstable_by`).
/// For an even count, returns the mean of the two middle elements.
///
/// # Panics
/// Panics on an empty slice.
pub fn median_f64(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let n = values.len();
    let mid = n / 2;
    let (_, &mut upper_mid, _) =
        values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("no NaN estimates"));
    if n % 2 == 1 {
        upper_mid
    } else {
        // select_nth placed the (mid)th order statistic; the lower middle is
        // the max of the left partition.
        let lower_mid = values[..mid]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        (lower_mid + upper_mid) / 2.0
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a slice, destructively, by the
/// nearest-rank method. Used by the experiment harness to report error
/// quantiles across seed repetitions.
pub fn quantile_f64(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let n = values.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    let (_, &mut v, _) =
        values.select_nth_unstable_by(rank, |a, b| a.partial_cmp(b).expect("no NaN values"));
    v
}

/// Relative error of an estimate against ground truth (0 if both are 0).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth
    }
}

/// An estimate together with the `(ε, δ)` contract it was produced under.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// The configured relative-error bound ε.
    pub epsilon: f64,
    /// The configured failure probability δ.
    pub delta: f64,
}

impl Estimate {
    /// Lower end of the `(1 − δ)`-confidence interval `value / (1 + ε)`.
    pub fn lower_bound(&self) -> f64 {
        self.value / (1.0 + self.epsilon)
    }

    /// Upper end of the `(1 − δ)`-confidence interval `value / (1 − ε)`.
    pub fn upper_bound(&self) -> f64 {
        self.value / (1.0 - self.epsilon)
    }

    /// The estimate rounded to the nearest count.
    pub fn rounded(&self) -> u64 {
        self.value.round().max(0.0) as u64
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} (±{:.0}% with {:.0}% confidence)",
            self.value,
            self.epsilon * 100.0,
            (1.0 - self.delta) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        let mut v = [5.0, 1.0, 3.0];
        assert_eq!(median_f64(&mut v), 3.0);
    }

    #[test]
    fn median_even_averages_middles() {
        let mut v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_f64(&mut v), 2.5);
    }

    #[test]
    fn median_single() {
        assert_eq!(median_f64(&mut [7.0]), 7.0);
    }

    #[test]
    fn median_with_duplicates() {
        let mut v = [2.0, 2.0, 2.0, 9.0, 1.0];
        assert_eq!(median_f64(&mut v), 2.0);
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn median_empty_panics() {
        median_f64(&mut []);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let mut v = [10.0, 11.0, 9.0, 1e18, 0.0];
        assert_eq!(median_f64(&mut v), 10.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile_f64(&mut v.clone(), 0.5), 50.0);
        assert_eq!(quantile_f64(&mut v.clone(), 0.95), 95.0);
        assert_eq!(quantile_f64(&mut v.clone(), 0.0), 1.0);
        assert_eq!(quantile_f64(&mut v, 1.0), 100.0);
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(5.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn estimate_bounds_bracket_truth() {
        // If |est − truth| ≤ ε·truth then truth ∈ [est/(1+ε), est/(1−ε)].
        let truth = 1000.0;
        let eps = 0.1;
        for est in [truth * (1.0 - eps), truth, truth * (1.0 + eps)] {
            let e = Estimate {
                value: est,
                epsilon: eps,
                delta: 0.05,
            };
            assert!(e.lower_bound() <= truth + 1e-9, "est {est}");
            assert!(e.upper_bound() >= truth - 1e-9, "est {est}");
        }
    }

    #[test]
    fn estimate_display_and_rounding() {
        let e = Estimate {
            value: 1234.4,
            epsilon: 0.05,
            delta: 0.01,
        };
        assert_eq!(e.rounded(), 1234);
        let s = e.to_string();
        assert!(s.contains("5%") && s.contains("99%"), "{s}");
    }
}
