//! Sliding-window distinct counting: "how many distinct labels arrived in
//! the last `W` time units?" with `W` chosen at **query time**, over
//! bounded space even on infinite streams.
//!
//! This is the paper's future-work direction, realized by the authors in
//! the SPAA 2002 sliding-window paper and the PODC 2006 asynchronous-
//! streams follow-up; the construction here is the timestamped variant of
//! coordinated sampling those papers build on:
//!
//! Per trial, keep one bounded store per level `l`. The store at level
//! `l` holds, among labels with `lvl(x) ≥ l`, the `c` with the most
//! recent *latest arrival* (evicting the stalest when full, and recording
//! the largest evicted timestamp). A query for window start `t₀` walks
//! up from level 0 to the first store that has **not** evicted anything
//! from `[t₀, ∞)` — that store provably contains *every* level-`l` label
//! whose latest arrival is in the window — counts its in-window entries,
//! and scales by `2^l`. Median over trials as usual.
//!
//! ## Guarantees
//!
//! * **Correct sample**: a store invalid for `t₀` is skipped, never
//!   silently used, so every answer is a true `2^{-l}`-Bernoulli count of
//!   the window's distinct labels — same `(ε, δ)` shape as the base
//!   sketch provided the chosen level's expected occupancy is Θ(c)
//!   (guaranteed by geometry: the first valid level holds between `c/2`
//!   and `c` in-window entries in expectation).
//! * **Space**: `O(c · L · r)` entries, `L ≤ 61` levels — the
//!   `log`-factor the sliding-window literature pays over the landmark
//!   version (`crate::recency` answers the same queries with no extra
//!   `log` factor while total distinct labels fit one store).
//! * **Out-of-order streams** are handled (the PODC'06 concern):
//!   per-label latest timestamps are max-merged, and eviction is by
//!   stored timestamp, not arrival order.
//! * **Union**: stores merge by union-then-re-evict; the level stores are
//!   deterministic functions of the per-label latest-ts map, so merged
//!   parties see exactly a single observer's stores. (Eviction *history*
//!   is not deterministic, so the merged sketch may be valid for more
//!   windows than the single observer — never fewer than either party.)

use std::collections::HashMap;

use gt_hash::{HashFamily, LevelHasher};

use crate::error::{Result, SketchError};
use crate::estimate::{median_f64, Estimate};
use crate::params::SketchConfig;

/// Levels maintained per trial. Level ℓ stores labels sampled at rate
/// `2^{-ℓ}`; 40 levels cover window cardinalities up to `c · 2^40`.
const WINDOW_LEVELS: usize = 40;

/// One bounded, timestamped level store.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
struct LevelStore {
    /// label → latest arrival timestamp. Holds the `capacity` labels with
    /// the most recent latest arrival among those sampled at this level.
    entries: HashMap<u64, u64>,
    /// Largest timestamp ever evicted; queries with `t₀ ≤ last_evicted`
    /// cannot be answered from this store.
    last_evicted: Option<u64>,
}

impl LevelStore {
    fn observe(&mut self, label: u64, ts: u64, capacity: usize) {
        match self.entries.get_mut(&label) {
            Some(existing) => {
                if ts > *existing {
                    *existing = ts;
                }
            }
            None => {
                if self.entries.len() == capacity {
                    // Evict the stalest entry; the newcomer is fresher by
                    // the top-c invariant (see module docs).
                    let (&stale_label, &stale_ts) = self
                        .entries
                        .iter()
                        .min_by_key(|&(_, &t)| t)
                        .expect("store is full, hence non-empty");
                    if ts < stale_ts {
                        // Out-of-order arrival staler than everything
                        // retained: it is the one to "evict".
                        self.last_evicted = Some(self.last_evicted.map_or(ts, |e| e.max(ts)));
                        return;
                    }
                    self.entries.remove(&stale_label);
                    self.last_evicted =
                        Some(self.last_evicted.map_or(stale_ts, |e| e.max(stale_ts)));
                }
                self.entries.insert(label, ts);
            }
        }
    }

    /// Whether a window starting at `t₀` can be answered exactly from
    /// this store's retained entries.
    fn valid_for(&self, t0: u64) -> bool {
        self.last_evicted.is_none_or(|e| e < t0)
    }

    fn count_since(&self, t0: u64) -> usize {
        self.entries.values().filter(|&&t| t >= t0).count()
    }

    fn merge_from(&mut self, other: &LevelStore, capacity: usize) {
        for (&label, &ts) in &other.entries {
            self.observe(label, ts, capacity);
        }
        if let Some(e) = other.last_evicted {
            self.last_evicted = Some(self.last_evicted.map_or(e, |m| m.max(e)));
        }
    }
}

/// One trial: a ladder of level stores sharing a hash function.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct WindowTrial {
    hasher: HashFamily,
    capacity: usize,
    levels: Vec<LevelStore>,
}

impl WindowTrial {
    fn new(hasher: HashFamily, capacity: usize) -> Self {
        WindowTrial {
            hasher,
            capacity,
            levels: vec![LevelStore::default(); WINDOW_LEVELS],
        }
    }

    fn insert(&mut self, label: u64, ts: u64) {
        let lvl = (self.hasher.level(label) as usize).min(WINDOW_LEVELS - 1);
        for store in &mut self.levels[..=lvl] {
            store.observe(label, ts, self.capacity);
        }
    }

    /// Estimate distinct labels with latest arrival ≥ `t₀`: first valid
    /// level, scaled.
    fn estimate_since(&self, t0: u64) -> f64 {
        for (l, store) in self.levels.iter().enumerate() {
            if store.valid_for(t0) {
                return store.count_since(t0) as f64 * 2f64.powi(l as i32);
            }
        }
        // Unreachable in practice: high levels hold ~c·2^{-l}·F0 labels
        // and never evict. Be conservative rather than panic.
        f64::NAN
    }

    fn merge_from(&mut self, other: &WindowTrial) -> Result<()> {
        if self.hasher != other.hasher {
            return Err(SketchError::SeedMismatch);
        }
        if self.capacity != other.capacity {
            return Err(SketchError::ConfigMismatch {
                detail: format!("window capacity {} vs {}", self.capacity, other.capacity),
            });
        }
        for (mine, theirs) in self.levels.iter_mut().zip(other.levels.iter()) {
            mine.merge_from(theirs, self.capacity);
        }
        Ok(())
    }

    fn entries(&self) -> usize {
        self.levels.iter().map(|s| s.entries.len()).sum()
    }
}

/// An `(ε, δ)` sliding-window distinct-count sketch over timestamped
/// label streams, mergeable across coordinated parties.
///
/// ```
/// use gt_core::{window::SlidingWindowSketch, SketchConfig};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut s = SlidingWindowSketch::new(&cfg, 7);
/// for t in 0..1000u64 {
///     s.insert(t, t); // label t arrives at time t
/// }
/// // Windows chosen at query time:
/// assert_eq!(s.estimate_distinct_since(900).value, 100.0);
/// assert_eq!(s.estimate_distinct_since(0).value, 1000.0);
/// ```
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SlidingWindowSketch {
    config: SketchConfig,
    master_seed: u64,
    trials: Vec<WindowTrial>,
    items_observed: u64,
}

impl SlidingWindowSketch {
    /// Create an empty sketch; same coordination contract as
    /// [`crate::DistinctSketch`]. Space is `O(capacity · 40 levels ·
    /// trials)` entries — budget accordingly (this is the `log N` factor
    /// sliding windows inherently cost).
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        let seq = config.seed_sequence(master_seed);
        let trials = (0..config.trials())
            .map(|t| {
                WindowTrial::new(
                    config.hash_kind().build(seq.trial_seed(t)),
                    config.capacity(),
                )
            })
            .collect();
        SlidingWindowSketch {
            config: *config,
            master_seed,
            trials,
            items_observed: 0,
        }
    }

    /// Observe `label` arriving at `timestamp` (any order).
    pub fn insert(&mut self, label: u64, timestamp: u64) {
        self.items_observed += 1;
        for trial in &mut self.trials {
            trial.insert(label, timestamp);
        }
    }

    /// Estimate the distinct labels whose latest arrival is at or after
    /// `since`. Unlike [`crate::RecencySketch`], accuracy does not decay
    /// as old labels accumulate: each level store retains the *most
    /// recent* `c` distinct labels at its sampling rate.
    pub fn estimate_distinct_since(&self, since: u64) -> Estimate {
        let mut per_trial: Vec<f64> = self
            .trials
            .iter()
            .map(|t| t.estimate_since(since))
            .filter(|v| !v.is_nan())
            .collect();
        let value = if per_trial.is_empty() {
            f64::NAN
        } else {
            median_f64(&mut per_trial)
        };
        Estimate {
            value,
            epsilon: self.config.epsilon(),
            delta: self.config.delta(),
        }
    }

    /// Estimate the distinct labels seen in the **last `window` time
    /// units** as of `now`: labels whose latest arrival lies in
    /// `(now − window, now]`, i.e. `estimate_distinct_since(now + 1 −
    /// window)` with saturation at time 0. A zero-width window is empty
    /// by definition (0.0). This is the query-plan entry point of the
    /// scenario harness ("distinct in the last W ticks"), phrased so
    /// callers never have to get the half-open boundary arithmetic right.
    pub fn estimate_distinct_last(&self, now: u64, window: u64) -> Estimate {
        if window == 0 {
            return Estimate {
                value: 0.0,
                epsilon: self.config.epsilon(),
                delta: self.config.delta(),
            };
        }
        let since = now.saturating_add(1).saturating_sub(window);
        self.estimate_distinct_since(since)
    }

    /// Union with a coordinated peer (see module docs for merge
    /// semantics).
    pub fn merge_from(&mut self, other: &SlidingWindowSketch) -> Result<()> {
        if self.master_seed != other.master_seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.config != other.config {
            return Err(SketchError::ConfigMismatch {
                detail: format!("{:?} vs {:?}", self.config, other.config),
            });
        }
        for (mine, theirs) in self.trials.iter_mut().zip(other.trials.iter()) {
            mine.merge_from(theirs)?;
        }
        self.items_observed += other.items_observed;
        Ok(())
    }

    /// Union as a new sketch.
    pub fn merged(&self, other: &SlidingWindowSketch) -> Result<SlidingWindowSketch> {
        let mut out = self.clone();
        out.merge_from(other)?;
        Ok(out)
    }

    /// Items observed (duplicates included).
    pub fn items_observed(&self) -> u64 {
        self.items_observed
    }

    /// Total retained entries across all trials and levels.
    pub fn sample_entries(&self) -> usize {
        self.trials.iter().map(|t| t.entries()).sum()
    }

    /// The sketch's configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }
}

impl crate::merge::Mergeable for SlidingWindowSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        SlidingWindowSketch::merge_from(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::from_shape(0.2, 0.2, 64, 5, gt_hash::HashFamilyKind::Pairwise).unwrap()
    }

    #[test]
    fn exact_for_small_windows() {
        let mut s = SlidingWindowSketch::new(&cfg(), 1);
        for t in 0..50u64 {
            s.insert(gt_hash::fold61(t), t);
        }
        assert_eq!(s.estimate_distinct_since(0).value, 50.0);
        assert_eq!(s.estimate_distinct_since(40).value, 10.0);
        assert_eq!(s.estimate_distinct_since(50).value, 0.0);
    }

    #[test]
    fn old_labels_do_not_crowd_out_recent_windows() {
        // THE sliding-window property (where RecencySketch degrades):
        // stream 100k old distinct labels, then 30 new ones. A recent
        // window must be answered exactly despite capacity 64.
        let mut s = SlidingWindowSketch::new(&cfg(), 2);
        for t in 0..30_000u64 {
            s.insert(gt_hash::fold61(t), t);
        }
        for (i, t) in (200_000..200_030u64).enumerate() {
            s.insert(gt_hash::fold61(1_000_000 + i as u64), t);
        }
        let est = s.estimate_distinct_since(200_000).value;
        assert_eq!(est, 30.0, "level-0 store must retain all 30 recent labels");
    }

    #[test]
    fn accuracy_across_window_sizes() {
        // Labels arrive once each at ts = id; window of size w holds w
        // distinct labels. Sweep windows across 3 decades.
        let n = 30_000u64;
        let config =
            SketchConfig::from_shape(0.1, 0.1, 300, 9, gt_hash::HashFamilyKind::Pairwise).unwrap();
        let mut s = SlidingWindowSketch::new(&config, 3);
        for t in 0..n {
            s.insert(gt_hash::fold61(t), t);
        }
        for w in [100u64, 1_000, 10_000, 30_000] {
            let est = s.estimate_distinct_since(n - w).value;
            let rel = (est - w as f64).abs() / w as f64;
            assert!(rel < 0.25, "window {w}: est {est} rel {rel}");
        }
    }

    #[test]
    fn duplicates_refresh_recency() {
        let mut s = SlidingWindowSketch::new(&cfg(), 4);
        for t in 0..40u64 {
            s.insert(gt_hash::fold61(t % 20), t); // 20 labels, re-arriving
        }
        assert_eq!(s.estimate_distinct_since(0).value, 20.0);
        // All 20 labels re-arrived in [20, 40).
        assert_eq!(s.estimate_distinct_since(20).value, 20.0);
    }

    #[test]
    fn out_of_order_arrivals() {
        let mut s = SlidingWindowSketch::new(&cfg(), 5);
        // Deliver timestamps shuffled (reverse order).
        for t in (0..50u64).rev() {
            s.insert(gt_hash::fold61(t), t);
        }
        assert_eq!(s.estimate_distinct_since(25).value, 25.0);
    }

    #[test]
    fn merge_answers_union_windows() {
        let config = cfg();
        let mut a = SlidingWindowSketch::new(&config, 6);
        let mut b = SlidingWindowSketch::new(&config, 6);
        // a: labels 0..30 at ts 0..30; b: labels 20..50 at ts 100+.
        for t in 0..30u64 {
            a.insert(gt_hash::fold61(t), t);
        }
        for (i, t) in (100..130u64).enumerate() {
            b.insert(gt_hash::fold61(20 + i as u64), t);
        }
        let u = a.merged(&b).unwrap();
        assert_eq!(u.estimate_distinct_since(0).value, 50.0);
        assert_eq!(u.estimate_distinct_since(100).value, 30.0); // b's re-arrivals count
        assert_eq!(u.items_observed(), 60);
        // Merge order invariant.
        let u2 = b.merged(&a).unwrap();
        assert_eq!(
            u2.estimate_distinct_since(100).value,
            u.estimate_distinct_since(100).value
        );
    }

    #[test]
    fn merged_stores_match_single_observer() {
        // The level stores are deterministic in the label→latest-ts map,
        // so merged parties equal one observer of both streams.
        let config = cfg();
        let mut a = SlidingWindowSketch::new(&config, 7);
        let mut b = SlidingWindowSketch::new(&config, 7);
        let mut whole = SlidingWindowSketch::new(&config, 7);
        for t in 0..5_000u64 {
            let (label, ts) = (gt_hash::fold61(t % 3_000), t);
            if t % 2 == 0 {
                a.insert(label, ts);
            } else {
                b.insert(label, ts);
            }
            whole.insert(label, ts);
        }
        let u = a.merged(&b).unwrap();
        for t0 in [0u64, 1_000, 4_000, 4_990] {
            let eu = u.estimate_distinct_since(t0).value;
            let ew = whole.estimate_distinct_since(t0).value;
            assert_eq!(eu, ew, "window from {t0}");
        }
    }

    #[test]
    fn uncoordinated_merges_rejected() {
        let a = SlidingWindowSketch::new(&cfg(), 1);
        let b = SlidingWindowSketch::new(&cfg(), 2);
        assert!(a.merged(&b).is_err());
        let c = SlidingWindowSketch::new(
            &SketchConfig::from_shape(0.2, 0.2, 32, 5, gt_hash::HashFamilyKind::Pairwise).unwrap(),
            1,
        );
        assert!(a.merged(&c).is_err());
    }

    #[test]
    fn space_is_bounded() {
        let config = cfg();
        let mut s = SlidingWindowSketch::new(&config, 8);
        for t in 0..50_000u64 {
            s.insert(gt_hash::fold61(t), t);
        }
        let ceiling = config.trials() * WINDOW_LEVELS * config.capacity();
        assert!(
            s.sample_entries() <= ceiling,
            "{} > {ceiling}",
            s.sample_entries()
        );
    }

    #[test]
    fn level_store_eviction_keeps_most_recent() {
        let mut store = LevelStore::default();
        for (label, ts) in [(1u64, 10u64), (2, 20), (3, 30), (4, 40)] {
            store.observe(label, ts, 3);
        }
        // Label 1 (ts 10) evicted.
        assert!(!store.entries.contains_key(&1));
        assert_eq!(store.last_evicted, Some(10));
        assert!(store.valid_for(11));
        assert!(!store.valid_for(10));
        // Out-of-order stale arrival bounces off a full store.
        store.observe(9, 5, 3);
        assert!(!store.entries.contains_key(&9));
        assert_eq!(store.entries.len(), 3);
        assert_eq!(store.last_evicted, Some(10)); // 5 < 10 keeps the max
    }
}
