//! # gt-core — coordinated adaptive sampling sketches
//!
//! An implementation of the distributed-streams sketch of
//! **Gibbons & Tirthapura, "Estimating simple functions on the union of
//! data streams" (SPAA 2001)**: `(ε, δ)`-approximation of the number of
//! distinct labels — and of other "simple functions" over the distinct
//! labels — in the **union** of many physically distributed data streams,
//! using only logarithmic space per stream and a single end-of-stream
//! message per party.
//!
//! ## The one-paragraph version
//!
//! All parties share a seeded pairwise-independent hash that assigns every
//! label a geometric *level* (`Pr[lvl ≥ l] = 2^{-l}`). Each party keeps the
//! set of distinct labels at or above its current level, raising the level
//! (and sub-sampling) whenever the set outgrows a fixed capacity
//! `c = Θ(1/ε²)`. Because the retained sample is a deterministic function
//! of the *set* of labels seen, samples from different parties can be
//! unioned losslessly — duplication across streams is free — and
//! `|sample| · 2^level` estimates the distinct count. A median over
//! `Θ(log 1/δ)` independent trials gives the `(ε, δ)` guarantee.
//!
//! ## Quick start
//!
//! ```
//! use gt_core::{DistinctSketch, SketchConfig};
//!
//! let config = SketchConfig::new(0.05, 0.01).unwrap(); // ε = 5%, δ = 1%
//! let seed = 0xC0FFEE;                                  // shared by all parties
//!
//! let mut site_a = DistinctSketch::new(&config, seed);
//! let mut site_b = DistinctSketch::new(&config, seed);
//! site_a.extend_labels(0..60_000);
//! site_b.extend_labels(40_000..100_000);               // overlaps site_a
//!
//! let union = site_a.merged(&site_b).unwrap();
//! let est = union.estimate_distinct();
//! assert!((est.value - 100_000.0).abs() < 0.05 * 100_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod compact;
pub mod concurrent;
pub mod delta;
pub mod error;
pub mod estimate;
pub mod expr;
pub mod merge;
pub mod metrics;
pub mod parallel;
pub mod params;
pub mod predicate;
pub mod recency;
pub mod sample;
pub mod sampleset;
pub mod similarity;
pub mod sketch;
pub mod sumdistinct;
pub mod trial;
pub mod window;
pub mod workers;

pub use compact::harmonize;
pub use delta::{apply_delta, delta_between};
pub use concurrent::{ConcurrentSketch, ShardedSketch, SketchSnapshot, SketchWriter, WRITER_BUF};
pub use error::{Result, SketchError};
pub use estimate::{median_f64, quantile_f64, relative_error, Estimate};
pub use expr::{eval_expr, ExprContext, ExpressionEstimate, JaccardEstimate, SetExpr};
pub use merge::{merge_all, merge_tree, Mergeable, MERGE_TREE_CROSSOVER};
pub use metrics::{
    ConcurrentMetrics, ConcurrentMetricsSnapshot, InsertTally, MetricsSnapshot, PropagationCause,
    SketchMetrics,
};
pub use params::SketchConfig;
pub use recency::{estimate_distinct_since_on, LatestTs, RecencySketch};
pub use sample::DistinctSample;
pub use similarity::{jaccard_matrix, similarity, SimilarityEstimate};
pub use sketch::{DistinctSketch, GtSketch, InsertStats};
pub use sumdistinct::SumDistinctSketch;
pub use trial::{CoordinatedTrial, Payload, TrialInsert, TrialMergeReport};
pub use window::SlidingWindowSketch;
pub use workers::{balanced_chunks, effective_workers};
