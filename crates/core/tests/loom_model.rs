//! Exhaustive model check of the `ConcurrentSketch` propagation/snapshot
//! protocol, using the vendored `loom` schedule explorer.
//!
//! The protocol under test (see `crates/core/src/concurrent.rs`):
//! writers ingest into thread-local buffers and propagate under a global
//! mutex — merge, bump the epoch, publish a clone of the global sketch —
//! while readers grab the published snapshot at arbitrary points. The
//! safety properties the models verify across **every interleaving**:
//!
//! 1. *Publication integrity*: every published snapshot is exactly the
//!    sequential sketch of the union of the batches merged so far (a
//!    prefix-union of the stream set), compared field-by-field (levels,
//!    item counts, sorted samples).
//! 2. *Reader monotonicity*: the snapshots any single reader observes
//!    are monotone in epoch and in covered items.
//! 3. *Convergence*: after all writers finish, the global sketch equals
//!    the sequential sketch over the full multiset.
//! 4. *Liveness*: no interleaving deadlocks.
//!
//! Two positive models run at different granularities: a fine-grained one
//! whose writers split lock / merge / publish / unlock into separate
//! steps (validating the lock protocol itself), and a coarser one with
//! atomic propagation steps but more writers/batches/reads (wider data
//! interleaving). The coarse granularity is sound because the fine model
//! shows the critical section's only externally visible write is the
//! publication itself. A third, *negative* model deliberately re-orders
//! publication after the unlock — the checker must catch the resulting
//! monotonicity violation, proving the harness can see this bug class at
//! all (and pinning the reason `ConcurrentSketch::propagate` publishes
//! while still holding the global lock).

use gt_core::{DistinctSketch, SketchConfig};
use loom::model::{explore, Actor, ExploreLimits};

fn cfg() -> SketchConfig {
    // Tiny shape so a 5-label batch overflows capacity and forces
    // promotions — the interesting regime for merge/publish ordering.
    SketchConfig::from_shape(0.5, 0.5, 4, 2, gt_hash::HashFamilyKind::Pairwise).unwrap()
}

const SEED: u64 = 0xD15C_0DE5;

/// Labels of batch `id`: disjoint across batches, 5 labels each.
fn batch(id: usize) -> Vec<u64> {
    (0..5u64)
        .map(|k| gt_hash::fold61(100 * id as u64 + k))
        .collect()
}

/// Field-by-field fingerprint (gt-core cannot depend on gt-streams'
/// codec, so bitwise identity is asserted on the decoded fields the
/// canonical encoding serialises: level, items, sorted sample).
fn state_of(s: &DistinctSketch) -> Vec<(u8, u64, Vec<u64>)> {
    s.trials()
        .iter()
        .map(|t| {
            let mut sample: Vec<u64> = t.sample_iter().map(|(k, _)| k).collect();
            sample.sort_unstable();
            (t.level(), t.items_observed(), sample)
        })
        .collect()
}

/// The sequential sketch of the given batches, in merge order.
fn sequential(ids: &[usize]) -> DistinctSketch {
    let mut s = DistinctSketch::new(&cfg(), SEED);
    for &id in ids {
        s.extend_slice(&batch(id));
    }
    s
}

/// Shared state of all protocol models.
struct Protocol {
    global: DistinctSketch,
    lock_held: bool,
    /// The published snapshot: (epoch, frozen sketch).
    published: (u64, DistinctSketch),
    epoch_counter: u64,
    /// Batch ids merged into `global`, in merge order.
    propagated: Vec<usize>,
    /// Per-reader last observed (epoch, items).
    reader_last: Vec<(u64, u64)>,
    violations: Vec<String>,
}

impl Protocol {
    fn new(readers: usize) -> Self {
        let empty = DistinctSketch::new(&cfg(), SEED);
        Protocol {
            published: (0, empty.clone()),
            global: empty,
            lock_held: false,
            epoch_counter: 0,
            propagated: Vec::new(),
            reader_last: vec![(0, 0); readers],
            violations: Vec::new(),
        }
    }

    /// Property 1: the just-published snapshot must equal the sequential
    /// sketch over exactly the propagated prefix-union.
    fn check_publication(&mut self) {
        let want = state_of(&sequential(&self.propagated.clone()));
        if state_of(&self.published.1) != want {
            self.violations.push(format!(
                "published snapshot diverges from sequential over {:?}",
                self.propagated
            ));
        }
    }
}

/// A reader: each step takes one snapshot and checks monotonicity.
struct Reader {
    id: usize,
    snapshots_left: u32,
}

impl Actor<Protocol> for Reader {
    fn finished(&self) -> bool {
        self.snapshots_left == 0
    }
    fn step(&mut self, s: &mut Protocol) {
        let (epoch, items) = (s.published.0, s.published.1.items_observed());
        let (last_epoch, last_items) = s.reader_last[self.id];
        if epoch < last_epoch {
            s.violations.push(format!(
                "reader {} saw epoch {epoch} after {last_epoch}",
                self.id
            ));
        }
        if items < last_items {
            s.violations.push(format!(
                "reader {} saw items {items} after {last_items}",
                self.id
            ));
        }
        s.reader_last[self.id] = (epoch, items);
        self.snapshots_left -= 1;
    }
}

/// Fine-grained writer: ingest → lock → merge → publish → unlock, one
/// model step each. Publication happens while the lock is held, exactly
/// like `ConcurrentSketch::propagate`.
struct FineWriter {
    batches: Vec<usize>,
    local: DistinctSketch,
    cycle: usize,
    pc: u8,
}

impl FineWriter {
    fn new(batches: Vec<usize>) -> Self {
        FineWriter {
            batches,
            local: DistinctSketch::new(&cfg(), SEED),
            cycle: 0,
            pc: 0,
        }
    }
}

impl Actor<Protocol> for FineWriter {
    fn enabled(&self, s: &Protocol) -> bool {
        self.pc != 1 || !s.lock_held
    }
    fn finished(&self) -> bool {
        self.cycle == self.batches.len()
    }
    fn step(&mut self, s: &mut Protocol) {
        match self.pc {
            0 => {
                self.local.extend_slice(&batch(self.batches[self.cycle]));
                self.pc = 1;
            }
            1 => {
                s.lock_held = true;
                self.pc = 2;
            }
            2 => {
                s.global.merge_from(&self.local).unwrap();
                s.propagated.push(self.batches[self.cycle]);
                self.local = DistinctSketch::new(&cfg(), SEED);
                self.pc = 3;
            }
            3 => {
                s.epoch_counter += 1;
                s.published = (s.epoch_counter, s.global.clone());
                s.check_publication();
                self.pc = 4;
            }
            _ => {
                s.lock_held = false;
                self.pc = 0;
                self.cycle += 1;
            }
        }
    }
}

/// Coarse writer: ingest is one step, the whole lock/merge/publish/unlock
/// critical section another (sound per the module docs).
struct CoarseWriter {
    batches: Vec<usize>,
    local: DistinctSketch,
    cycle: usize,
    ingested: bool,
}

impl CoarseWriter {
    fn new(batches: Vec<usize>) -> Self {
        CoarseWriter {
            batches,
            local: DistinctSketch::new(&cfg(), SEED),
            cycle: 0,
            ingested: false,
        }
    }
}

impl Actor<Protocol> for CoarseWriter {
    fn finished(&self) -> bool {
        self.cycle == self.batches.len()
    }
    fn step(&mut self, s: &mut Protocol) {
        if !self.ingested {
            self.local.extend_slice(&batch(self.batches[self.cycle]));
            self.ingested = true;
        } else {
            s.global.merge_from(&self.local).unwrap();
            s.propagated.push(self.batches[self.cycle]);
            self.local = DistinctSketch::new(&cfg(), SEED);
            s.epoch_counter += 1;
            s.published = (s.epoch_counter, s.global.clone());
            s.check_publication();
            self.ingested = false;
            self.cycle += 1;
        }
    }
}

/// BUGGY writer for the negative test: stages the snapshot inside the
/// critical section but publishes it *after* releasing the lock, so two
/// writers can publish out of merge order and roll the visible epoch
/// backwards. The checker must find this.
struct BuggyWriter {
    batches: Vec<usize>,
    local: DistinctSketch,
    staged: Option<(u64, DistinctSketch)>,
    cycle: usize,
    pc: u8,
}

impl BuggyWriter {
    fn new(batches: Vec<usize>) -> Self {
        BuggyWriter {
            batches,
            local: DistinctSketch::new(&cfg(), SEED),
            staged: None,
            cycle: 0,
            pc: 0,
        }
    }
}

impl Actor<Protocol> for BuggyWriter {
    fn enabled(&self, s: &Protocol) -> bool {
        self.pc != 1 || !s.lock_held
    }
    fn finished(&self) -> bool {
        self.cycle == self.batches.len()
    }
    fn step(&mut self, s: &mut Protocol) {
        match self.pc {
            0 => {
                self.local.extend_slice(&batch(self.batches[self.cycle]));
                self.pc = 1;
            }
            1 => {
                s.lock_held = true;
                self.pc = 2;
            }
            2 => {
                s.global.merge_from(&self.local).unwrap();
                self.local = DistinctSketch::new(&cfg(), SEED);
                s.epoch_counter += 1;
                self.staged = Some((s.epoch_counter, s.global.clone()));
                self.pc = 3;
            }
            3 => {
                s.lock_held = false; // bug: unlock before publishing
                self.pc = 4;
            }
            _ => {
                s.published = self.staged.take().unwrap();
                self.pc = 0;
                self.cycle += 1;
            }
        }
    }
}

#[test]
fn fine_grained_protocol_holds_under_all_interleavings() {
    let mut violations: Vec<String> = Vec::new();
    let mut final_mismatches = 0usize;
    let want_final = state_of(&sequential(&[0, 1]));
    let report = explore(
        || {
            let actors: Vec<Box<dyn Actor<Protocol>>> = vec![
                Box::new(FineWriter::new(vec![0])),
                Box::new(FineWriter::new(vec![1])),
                Box::new(Reader {
                    id: 0,
                    snapshots_left: 2,
                }),
            ];
            (Protocol::new(1), actors)
        },
        |s| {
            violations.extend(s.violations.iter().cloned());
            if state_of(&s.global) != want_final {
                final_mismatches += 1;
            }
        },
        ExploreLimits::default(),
    );
    assert!(!report.truncated, "model wider than intended: {report:?}");
    assert_eq!(report.deadlocks, 0, "{report:?}");
    // 5+5 writer steps and 2 reader steps give C(12;5,5,2) = 16 632
    // raw interleavings; enabledness pruning removes every one that
    // schedules a writer blocked on the held lock, leaving exactly 792
    // distinct behaviours (deterministic, so pinned).
    assert_eq!(report.schedules, 792, "{report:?}");
    assert_eq!(violations, Vec::<String>::new());
    assert_eq!(final_mismatches, 0);
}

#[test]
fn coarse_protocol_holds_with_more_writers_and_reads() {
    let mut violations: Vec<String> = Vec::new();
    let mut final_mismatches = 0usize;
    let want_final = state_of(&sequential(&[0, 1, 2, 3]));
    let report = explore(
        || {
            let actors: Vec<Box<dyn Actor<Protocol>>> = vec![
                Box::new(CoarseWriter::new(vec![0, 1])),
                Box::new(CoarseWriter::new(vec![2, 3])),
                Box::new(Reader {
                    id: 0,
                    snapshots_left: 3,
                }),
            ];
            (Protocol::new(1), actors)
        },
        |s| {
            violations.extend(s.violations.iter().cloned());
            if state_of(&s.global) != want_final {
                final_mismatches += 1;
            }
        },
        ExploreLimits::default(),
    );
    assert!(!report.truncated, "model wider than intended: {report:?}");
    assert_eq!(report.deadlocks, 0);
    // C(11;4,4,3) = 11 550 interleavings, nothing pruned (no blocking).
    assert_eq!(report.schedules, 11_550);
    assert_eq!(violations, Vec::<String>::new());
    assert_eq!(final_mismatches, 0);
}

#[test]
fn checker_catches_publish_after_unlock_bug() {
    let mut violations = 0usize;
    let report = explore(
        || {
            let actors: Vec<Box<dyn Actor<Protocol>>> = vec![
                Box::new(BuggyWriter::new(vec![0])),
                Box::new(BuggyWriter::new(vec![1])),
                Box::new(Reader {
                    id: 0,
                    snapshots_left: 2,
                }),
            ];
            (Protocol::new(1), actors)
        },
        |s| violations += s.violations.len(),
        ExploreLimits::default(),
    );
    assert_eq!(report.deadlocks, 0);
    assert!(
        violations > 0,
        "the checker failed to catch a publish-after-unlock reordering \
         across {} schedules — the harness has lost its teeth",
        report.schedules
    );
}
