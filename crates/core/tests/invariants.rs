//! Crate-level property tests on sketch monotonicity and lifecycle
//! invariants under arbitrary interleavings of operations.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_core::{DistinctSketch, SketchConfig};
use gt_hash::HashFamilyKind;

fn config(capacity: usize, trials: usize) -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, capacity, trials, HashFamilyKind::Pairwise).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Levels never decrease, observation counters never decrease, and the
    /// capacity bound holds at every step of an arbitrary stream.
    #[test]
    fn lifecycle_monotonicity(items in vec(0u64..50_000, 1..500)) {
        let mut s = DistinctSketch::new(&config(16, 3), 7);
        let mut last_levels: Vec<u8> = s.trials().iter().map(|t| t.level()).collect();
        let mut last_items = 0u64;
        for (step, &x) in items.iter().enumerate() {
            s.insert(gt_hash::fold61(x));
            for (t, &prev) in s.trials().iter().zip(last_levels.iter()) {
                prop_assert!(t.level() >= prev, "level decreased at step {step}");
                prop_assert!(t.sample_len() <= t.capacity());
            }
            prop_assert!(s.items_observed() > last_items);
            last_levels = s.trials().iter().map(|t| t.level()).collect();
            last_items = s.items_observed();
        }
    }

    /// Merging extra data can only grow each trial's level and (at equal
    /// levels) its sample — union is monotone in the set order.
    #[test]
    fn union_is_monotone(
        a in vec(0u64..20_000, 1..300),
        b in vec(0u64..20_000, 0..300),
    ) {
        let cfg = config(32, 3);
        let mut sa = DistinctSketch::new(&cfg, 9);
        sa.extend_labels(a.iter().map(|&x| gt_hash::fold61(x)));
        let mut sb = DistinctSketch::new(&cfg, 9);
        sb.extend_labels(b.iter().map(|&x| gt_hash::fold61(x)));
        let union = sa.merged(&sb).unwrap();
        for (tu, ta) in union.trials().iter().zip(sa.trials().iter()) {
            prop_assert!(tu.level() >= ta.level());
            if tu.level() == ta.level() {
                // Every label of A's sample must still be present.
                for (label, _) in ta.sample_iter() {
                    prop_assert!(tu.contains_label(label));
                }
            }
        }
    }

    /// Estimates respect the trivial bounds: between 0 and (well above) the
    /// number of items observed can't be asserted tightly, but an estimate
    /// can never be negative and an empty sketch is exactly zero; and
    /// inserting the first label moves the estimate to exactly 1.
    #[test]
    fn estimate_boundary_behaviour(label in 0..gt_hash::P61) {
        let mut s = DistinctSketch::new(&config(8, 3), 3);
        prop_assert_eq!(s.estimate_distinct().value, 0.0);
        s.insert(label);
        prop_assert_eq!(s.estimate_distinct().value, 1.0);
        s.insert(label);
        prop_assert_eq!(s.estimate_distinct().value, 1.0);
    }

    /// Shrinking then merging is the same as merging then shrinking
    /// (compaction commutes with union).
    #[test]
    fn shrink_commutes_with_merge(
        a in vec(0u64..10_000, 1..200),
        b in vec(0u64..10_000, 1..200),
    ) {
        let cfg = config(64, 3);
        let mut sa = DistinctSketch::new(&cfg, 11);
        sa.extend_labels(a.iter().map(|&x| gt_hash::fold61(x)));
        let mut sb = DistinctSketch::new(&cfg, 11);
        sb.extend_labels(b.iter().map(|&x| gt_hash::fold61(x)));

        let shrink_then_merge = {
            let sa = sa.with_capacity(16).unwrap();
            let sb = sb.with_capacity(16).unwrap();
            sa.merged(&sb).unwrap()
        };
        let merge_then_shrink = sa.merged(&sb).unwrap().with_capacity(16).unwrap();

        let state = |s: &DistinctSketch| -> Vec<(u8, Vec<u64>)> {
            s.trials()
                .iter()
                .map(|t| {
                    let mut v: Vec<u64> = t.sample_iter().map(|(k, _)| k).collect();
                    v.sort_unstable();
                    (t.level(), v)
                })
                .collect()
        };
        prop_assert_eq!(state(&shrink_then_merge), state(&merge_then_shrink));
    }
}
