//! `gtsketch` — command-line coordinated sketching.
//!
//! Build sketches from label streams on stdin, persist them in the wire
//! format, merge sketch files from independent observers, and query the
//! union — the paper's party/referee pipeline as shell plumbing:
//!
//! ```text
//! # on each monitoring host (same --seed everywhere!)
//! zcat flows_a.gz | gtsketch build --eps 0.05 --delta 0.01 --seed 7 --out a.gts
//! zcat flows_b.gz | gtsketch build --eps 0.05 --delta 0.01 --seed 7 --out b.gts
//!
//! # at the collector
//! gtsketch estimate a.gts b.gts
//! gtsketch merge --out union.gts a.gts b.gts
//! gtsketch info union.gts
//! ```
//!
//! Input lines that parse as decimal `u64` below `2^61 − 1` are used as
//! raw labels; anything else (or everything, with `--hashed`) is folded
//! through the fixed label mixer, so arbitrary strings work.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use gt_sketch::streams::{decode_sketch, encode_sketch};
use gt_sketch::{DistinctSketch, SketchConfig};

const USAGE: &str = "\
usage:
  gtsketch build --eps <f> --delta <f> --seed <u64> --out <file> [--hashed]   (labels on stdin)
  gtsketch merge --out <file> <sketch files...>
  gtsketch estimate <sketch files...>
  gtsketch info <sketch file>
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gtsketch: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parse one input line into a sketch label (see module docs).
fn parse_label(line: &str, force_hash: bool) -> Option<u64> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    if !force_hash {
        if let Ok(v) = line.parse::<u64>() {
            if v < gt_sketch::hash::P61 {
                return Some(v);
            }
            return Some(gt_sketch::fold61(v));
        }
    }
    Some(gt_sketch::hash::mix::fold_label(&line))
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&String> {
    // Everything that is not a flag or a flag's value.
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = a != "--hashed"; // the only boolean flag
            continue;
        }
        out.push(a);
    }
    out
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let eps: f64 = flag_value(args, "--eps")
        .ok_or("build requires --eps")?
        .parse()
        .map_err(|e| format!("--eps: {e}"))?;
    let delta: f64 = flag_value(args, "--delta")
        .ok_or("build requires --delta")?
        .parse()
        .map_err(|e| format!("--delta: {e}"))?;
    let seed: u64 = flag_value(args, "--seed")
        .ok_or("build requires --seed (the coordination token)")?
        .parse()
        .map_err(|e| format!("--seed: {e}"))?;
    let out = flag_value(args, "--out").ok_or("build requires --out")?;
    let hashed = args.iter().any(|a| a == "--hashed");

    let config = SketchConfig::new(eps, delta).map_err(|e| e.to_string())?;
    let mut sketch = DistinctSketch::new(&config, seed);

    let stdin = std::io::stdin();
    let mut lines = 0u64;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if let Some(label) = parse_label(&line, hashed) {
            sketch.insert(label);
            lines += 1;
        }
    }
    write_sketch(out, &sketch)?;
    eprintln!(
        "gtsketch: {lines} items -> {} ({} bytes), estimate {}",
        out,
        encode_sketch(&sketch).len(),
        sketch.estimate_distinct()
    );
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out").ok_or("merge requires --out")?;
    let files = positional(args);
    if files.is_empty() {
        return Err("merge requires at least one input sketch".into());
    }
    let union = read_and_merge(&files)?;
    write_sketch(out, &union)?;
    eprintln!(
        "gtsketch: merged {} sketches -> {out}, estimate {}",
        files.len(),
        union.estimate_distinct()
    );
    Ok(())
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    if files.is_empty() {
        return Err("estimate requires at least one sketch file".into());
    }
    let union = read_and_merge(&files)?;
    let est = union.estimate_distinct();
    println!("{}", est.rounded());
    eprintln!(
        "gtsketch: {} (interval [{:.0}, {:.0}] at {:.0}% confidence)",
        est,
        est.lower_bound(),
        est.upper_bound(),
        (1.0 - est.delta) * 100.0
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let files = positional(args);
    let [file] = files.as_slice() else {
        return Err("info takes exactly one sketch file".into());
    };
    let sketch = read_sketch(file)?;
    let cfg = sketch.config();
    println!("file:           {file}");
    println!("epsilon:        {}", cfg.epsilon());
    println!("delta:          {}", cfg.delta());
    println!("trials:         {}", cfg.trials());
    println!("capacity:       {}", cfg.capacity());
    println!("hash family:    {:?}", cfg.hash_kind());
    println!("master seed:    {:#x}", sketch.master_seed());
    println!("items observed: {}", sketch.items_observed());
    println!("sample entries: {}", sketch.sample_entries());
    println!("max level:      {}", sketch.max_level());
    println!("estimate:       {}", sketch.estimate_distinct());
    Ok(())
}

fn read_sketch(path: &str) -> Result<DistinctSketch, String> {
    let raw = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    decode_sketch(bytes::Bytes::from(raw)).map_err(|e| format!("{path}: {e}"))
}

fn read_and_merge(files: &[&String]) -> Result<DistinctSketch, String> {
    let mut union: Option<DistinctSketch> = None;
    for f in files {
        let sketch = read_sketch(f)?;
        union = Some(match union {
            None => sketch,
            Some(mut acc) => {
                acc.merge_from(&sketch)
                    .map_err(|e| format!("{f}: cannot union: {e}"))?;
                acc
            }
        });
    }
    Ok(union.expect("files is non-empty"))
}

fn write_sketch(path: &str, sketch: &DistinctSketch) -> Result<(), String> {
    let payload = encode_sketch(sketch);
    let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    f.write_all(&payload).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_label_modes() {
        // Decimal in range: used raw.
        assert_eq!(parse_label("42", false), Some(42));
        // Decimal out of field range: folded (still deterministic).
        let big = u64::MAX.to_string();
        let folded = parse_label(&big, false).unwrap();
        assert!(folded < gt_sketch::hash::P61);
        // Strings: hashed.
        let a = parse_label("10.0.0.1:443", false).unwrap();
        assert_eq!(parse_label("10.0.0.1:443", false), Some(a));
        assert_ne!(parse_label("10.0.0.2:443", false), Some(a));
        // --hashed forces hashing even for decimals.
        assert_ne!(parse_label("42", true), Some(42));
        // Blank lines skipped.
        assert_eq!(parse_label("   ", false), None);
    }

    #[test]
    fn flag_and_positional_parsing() {
        let args: Vec<String> = [
            "--eps", "0.1", "a.gts", "--hashed", "b.gts", "--out", "u.gts",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(flag_value(&args, "--eps"), Some("0.1"));
        assert_eq!(flag_value(&args, "--out"), Some("u.gts"));
        assert_eq!(flag_value(&args, "--nope"), None);
        let pos = positional(&args);
        assert_eq!(pos, vec!["a.gts", "b.gts"]);
    }

    #[test]
    fn file_roundtrip_and_merge() {
        let dir = std::env::temp_dir().join("gtsketch_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pa = dir.join("a.gts");
        let pb = dir.join("b.gts");
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let mut a = DistinctSketch::new(&config, 9);
        let mut b = DistinctSketch::new(&config, 9);
        a.extend_labels((0..500).map(gt_sketch::fold61));
        b.extend_labels((250..750).map(gt_sketch::fold61));
        write_sketch(pa.to_str().unwrap(), &a).unwrap();
        write_sketch(pb.to_str().unwrap(), &b).unwrap();

        let fa = pa.to_str().unwrap().to_string();
        let fb = pb.to_str().unwrap().to_string();
        let union = read_and_merge(&[&fa, &fb]).unwrap();
        assert_eq!(union.estimate_distinct().value, 750.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_of_uncoordinated_files_reports_error() {
        let dir = std::env::temp_dir().join("gtsketch_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let pa = dir.join("a.gts");
        let pb = dir.join("b.gts");
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        write_sketch(pa.to_str().unwrap(), &DistinctSketch::new(&config, 1)).unwrap();
        write_sketch(pb.to_str().unwrap(), &DistinctSketch::new(&config, 2)).unwrap();
        let fa = pa.to_str().unwrap().to_string();
        let fb = pb.to_str().unwrap().to_string();
        let err = read_and_merge(&[&fa, &fb]).unwrap_err();
        assert!(err.contains("cannot union"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
