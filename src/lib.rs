//! # gt-sketch
//!
//! Coordinated-sampling sketches for **estimating simple functions on the
//! union of data streams** — a from-scratch Rust implementation of
//! Gibbons & Tirthapura (SPAA 2001), the algorithm that seeded today's
//! KMV / Theta distinct-counting sketches.
//!
//! ## What you get
//!
//! * [`DistinctSketch`] — `(ε, δ)`-approximate distinct counting (F₀) in
//!   `O(ε⁻² log(1/δ) log n)` space, **losslessly mergeable** across any
//!   number of independent observers that share a seed.
//! * [`SumDistinctSketch`] — duplicate-insensitive sums over distinct
//!   labels.
//! * Predicate-restricted counts ([`GtSketch::estimate_distinct_where`]),
//!   distinct-label samples ([`DistinctSample`]), and two-stream
//!   intersection / Jaccard estimation ([`similarity()`]).
//! * [`ShardedSketch`] and [`parallel`] — multicore ingestion with
//!   bit-identical results to sequential processing.
//! * A full distributed-streams runtime ([`streams`]): parties, referee,
//!   byte-counted wire codec, workload generators, scenario runner.
//! * A keyed multi-tenant sketch store ([`store`]): millions of per-key
//!   sketches behind one sharded ingest path, with arena-packed state,
//!   hot-key front caches, and LRU eviction to an on-disk spill log.
//! * Baselines ([`baselines`]): exact, FM/PCSA, LogLog, linear counting,
//!   KMV, reservoir sampling — behind one trait.
//!
//! ## Five-line quick start
//!
//! ```
//! use gt_sketch::{DistinctSketch, SketchConfig};
//! let config = SketchConfig::new(0.05, 0.01).unwrap();
//! let (mut a, mut b) = (DistinctSketch::new(&config, 7), DistinctSketch::new(&config, 7));
//! a.extend_labels(0..50_000);
//! b.extend_labels(25_000..75_000);
//! assert!((a.merged(&b).unwrap().estimate_distinct().value - 75_000.0).abs() < 3_750.0);
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gt_core::{
    compact, concurrent, error, estimate, eval_expr, expr, harmonize, jaccard_matrix, median_f64,
    merge, merge_all, merge_tree, metrics, parallel, params, predicate, quantile_f64, recency,
    relative_error, sample, similarity, sketch, sumdistinct, trial, ConcurrentMetricsSnapshot,
    ConcurrentSketch, CoordinatedTrial, DistinctSample, DistinctSketch, Estimate, ExprContext,
    ExpressionEstimate, GtSketch, InsertStats, JaccardEstimate, LatestTs, Mergeable,
    MetricsSnapshot, Payload, PropagationCause, RecencySketch, Result, SetExpr, ShardedSketch,
    SimilarityEstimate, SketchConfig, SketchError, SketchMetrics, SketchSnapshot, SketchWriter,
    SumDistinctSketch, TrialInsert, TrialMergeReport,
};

/// Hashing substrate: pairwise-independent families, levels, seeds.
pub use gt_hash as hash;
pub use gt_hash::{fold61, mix64, HashFamilyKind};

/// Distributed-streams runtime: parties, referee, codec, workloads.
pub use gt_streams as streams;

/// Keyed multi-tenant sketch store: arena-packed per-key state, sharded
/// ingest, hot-key front caches, eviction + spill.
pub use gt_store as store;

/// Baseline distinct counters for comparison.
pub use gt_baselines as baselines;
